"""Data series behind Figures 2 and 3 of the paper.

Figure 2 plots the *average price of anarchy* of equilibrium networks and
Figure 3 the *average number of links*, for the UCG and the BCG, against the
link cost (on the aligned log axis described in :mod:`repro.analysis.sweeps`).
This module turns an :class:`~repro.analysis.census.EquilibriumCensus`, a
columnar :class:`~repro.analysis.store.CensusStore` or a sampled collection
of equilibria into those series, as plain dataclasses that the experiments
and benchmarks render as text tables.

A store is detected by its vectorised ``grid_aggregates`` method and gets
the fast path: the whole α-grid of both games is answered in two segmented
NumPy passes instead of one Python record walk per grid point, with output
guaranteed (and tested) element-for-element identical to the record path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.anarchy import average_price_of_anarchy, worst_case_price_of_anarchy
from ..graphs import Graph
from .census import EquilibriumCensus
from .sweeps import aligned_link_costs, default_alpha_grid, per_edge_cost_axis


@dataclass
class SeriesPoint:
    """One point of a figure series."""

    alpha: float
    axis: float
    value: float
    num_equilibria: int

    def as_row(self) -> List[float]:
        """The point as a list (alpha, axis, value, count) for table rendering."""
        return [self.alpha, self.axis, self.value, float(self.num_equilibria)]


@dataclass
class FigureSeries:
    """A named series of (link cost, value) points for one game."""

    game: str
    quantity: str
    points: List[SeriesPoint] = field(default_factory=list)

    def values(self) -> List[float]:
        """The y-values of the series."""
        return [p.value for p in self.points]

    def alphas(self) -> List[float]:
        """The link costs of the series."""
        return [p.alpha for p in self.points]


@dataclass
class FigureData:
    """The full content of one of the paper's empirical figures."""

    n: int
    quantity: str
    ucg: FigureSeries
    bcg: FigureSeries
    description: str = ""

    def crossover_cost(self) -> Optional[float]:
        """Smallest total per-edge cost at which the UCG series beats the BCG series.

        For Figure 2 the paper reports that the BCG has the better (lower)
        average PoA when links are cheap and the worse one when links are
        expensive; the crossover summarises that shape in a single number.
        Returns ``None`` when the series never cross.
        """
        for ucg_point, bcg_point in zip(self.ucg.points, self.bcg.points):
            if _is_number(ucg_point.value) and _is_number(bcg_point.value):
                if bcg_point.value > ucg_point.value + 1e-12:
                    return ucg_point.alpha
        return None


def _is_number(x: float) -> bool:
    return x == x and x not in (float("inf"), float("-inf"))


def figure_to_payload(figure: FigureData) -> Dict[str, object]:
    """A :class:`FigureData` as a plain JSON-safe dict (service wire shape).

    The inverse of :func:`figure_from_payload`; round-tripping preserves
    every float bit-for-bit (Python's JSON encoder emits ``repr`` floats),
    so a figure rendered from the payload is byte-identical to one
    rendered from the original dataclass.
    """
    def series(s: FigureSeries) -> Dict[str, object]:
        return {
            "game": s.game,
            "quantity": s.quantity,
            "points": [
                {
                    "alpha": p.alpha,
                    "axis": p.axis,
                    "value": p.value,
                    "num_equilibria": p.num_equilibria,
                }
                for p in s.points
            ],
        }

    return {
        "n": figure.n,
        "quantity": figure.quantity,
        "description": figure.description,
        "ucg": series(figure.ucg),
        "bcg": series(figure.bcg),
    }


def figure_from_payload(payload: Dict[str, object]) -> FigureData:
    """Rebuild a :class:`FigureData` from a :func:`figure_to_payload` dict."""
    def series(entry: Dict[str, object]) -> FigureSeries:
        return FigureSeries(
            game=entry["game"],
            quantity=entry["quantity"],
            points=[
                SeriesPoint(
                    alpha=float(p["alpha"]),
                    axis=float(p["axis"]),
                    value=float(p["value"]),
                    num_equilibria=int(p["num_equilibria"]),
                )
                for p in entry["points"]
            ],
        )

    return FigureData(
        n=int(payload["n"]),
        quantity=payload["quantity"],
        ucg=series(payload["ucg"]),
        bcg=series(payload["bcg"]),
        description=payload.get("description", ""),
    )


# --------------------------------------------------------------------------- #
# Census-based (exhaustive) series
# --------------------------------------------------------------------------- #


def _census_value(
    census: EquilibriumCensus, alpha: float, game: str, quantity: str
) -> float:
    if quantity == "average_poa":
        return census.average_price_of_anarchy(alpha, game)
    if quantity == "worst_poa":
        return census.worst_price_of_anarchy(alpha, game)
    if quantity == "average_links":
        return census.average_num_links(alpha, game)
    raise ValueError(f"unknown quantity {quantity!r}")


def census_figure_series(
    census: EquilibriumCensus,
    quantity: str,
    total_edge_costs: Optional[Sequence[float]] = None,
    align_per_edge_cost: bool = True,
    aggregates=None,
) -> FigureData:
    """Compute a Figure 2/3-style dataset from an exhaustive census.

    Parameters
    ----------
    census:
        The per-topology equilibrium summaries.
    quantity:
        ``"average_poa"`` (Figure 2), ``"average_links"`` (Figure 3) or
        ``"worst_poa"`` (the worst-case PoA used by Proposition 4 checks).
    total_edge_costs:
        Grid of total per-edge costs; defaults to a log grid suited to the
        census size.
    align_per_edge_cost:
        When true (the paper's convention) the UCG is evaluated at
        ``α = cost`` and the BCG at ``α = cost / 2`` so that one x-value
        corresponds to the same total price of an edge in both games.  When
        false both games are evaluated at ``α = cost``.
    aggregates:
        Optional ``(alphas, game) -> grid-aggregates dict`` override for
        the store fast path.  The service layer injects its batched
        :meth:`~repro.service.QueryAPI.grid_aggregates` here so concurrent
        figure requests coalesce into shared kernel calls; results are
        identical because the kernels are per-column independent.
    """
    if quantity not in ("average_poa", "worst_poa", "average_links"):
        raise ValueError(f"unknown quantity {quantity!r}")
    if total_edge_costs is None:
        total_edge_costs = default_alpha_grid(census.n)
    if aggregates is not None or hasattr(census, "grid_aggregates"):
        return _store_figure_series(
            census, quantity, total_edge_costs, align_per_edge_cost,
            aggregates=aggregates,
        )
    ucg_series = FigureSeries(game="ucg", quantity=quantity)
    bcg_series = FigureSeries(game="bcg", quantity=quantity)
    for cost in total_edge_costs:
        if align_per_edge_cost:
            alpha_ucg, alpha_bcg = aligned_link_costs(cost)
        else:
            alpha_ucg = alpha_bcg = cost
        ucg_series.points.append(
            SeriesPoint(
                alpha=alpha_ucg,
                axis=per_edge_cost_axis(alpha_ucg, "ucg"),
                value=_census_value(census, alpha_ucg, "ucg", quantity),
                num_equilibria=census.equilibrium_count(alpha_ucg, "ucg"),
            )
        )
        bcg_series.points.append(
            SeriesPoint(
                alpha=alpha_bcg,
                axis=per_edge_cost_axis(alpha_bcg, "bcg"),
                value=_census_value(census, alpha_bcg, "bcg", quantity),
                num_equilibria=census.equilibrium_count(alpha_bcg, "bcg"),
            )
        )
    return FigureData(
        n=census.n,
        quantity=quantity,
        ucg=ucg_series,
        bcg=bcg_series,
        description=(
            f"exhaustive census of all connected topologies on {census.n} vertices"
        ),
    )


def _store_figure_series(
    store,
    quantity: str,
    total_edge_costs: Sequence[float],
    align_per_edge_cost: bool,
    aggregates=None,
) -> FigureData:
    """Whole-grid figure series from a columnar :class:`CensusStore`.

    Both games are answered with one vectorised ``grid_aggregates`` call
    over the full per-game α-vector; point values, equilibrium counts, axis
    values and the description are identical to the per-record path.
    """
    alphas_ucg: List[float] = []
    alphas_bcg: List[float] = []
    for cost in total_edge_costs:
        if align_per_edge_cost:
            alpha_ucg, alpha_bcg = aligned_link_costs(cost)
        else:
            alpha_ucg = alpha_bcg = cost
        alphas_ucg.append(alpha_ucg)
        alphas_bcg.append(alpha_bcg)
    if aggregates is None:
        aggregates = store.grid_aggregates
    ucg_series = FigureSeries(game="ucg", quantity=quantity)
    bcg_series = FigureSeries(game="bcg", quantity=quantity)
    for game, alphas, series in (
        ("ucg", alphas_ucg, ucg_series),
        ("bcg", alphas_bcg, bcg_series),
    ):
        grid = aggregates(alphas, game)
        values = grid[quantity]
        counts = grid["counts"]
        for alpha, value, count in zip(alphas, values, counts):
            series.points.append(
                SeriesPoint(
                    alpha=alpha,
                    axis=per_edge_cost_axis(alpha, game),
                    value=value,
                    num_equilibria=count,
                )
            )
    return FigureData(
        n=store.n,
        quantity=quantity,
        ucg=ucg_series,
        bcg=bcg_series,
        description=(
            f"exhaustive census of all connected topologies on {store.n} vertices"
        ),
    )


# --------------------------------------------------------------------------- #
# Sample-based series (for player counts beyond exhaustive reach)
# --------------------------------------------------------------------------- #


def sampled_figure_series(
    n: int,
    quantity: str,
    equilibria_by_cost: Dict[float, Dict[str, List[Graph]]],
) -> FigureData:
    """Build a Figure 2/3-style dataset from pre-sampled equilibrium networks.

    ``equilibria_by_cost[cost][game]`` must hold the sampled equilibrium
    graphs of ``game`` at total per-edge cost ``cost`` (the per-game α split
    is applied here, mirroring :func:`census_figure_series`).
    """
    ucg_series = FigureSeries(game="ucg", quantity=quantity)
    bcg_series = FigureSeries(game="bcg", quantity=quantity)
    for cost in sorted(equilibria_by_cost):
        alpha_ucg, alpha_bcg = aligned_link_costs(cost)
        by_game = equilibria_by_cost[cost]
        for game, alpha, series in (
            ("ucg", alpha_ucg, ucg_series),
            ("bcg", alpha_bcg, bcg_series),
        ):
            graphs = by_game.get(game, [])
            if quantity == "average_poa":
                value = average_price_of_anarchy(graphs, alpha, game)
            elif quantity == "worst_poa":
                value = worst_case_price_of_anarchy(graphs, alpha, game)
            elif quantity == "average_links":
                value = (
                    sum(g.num_edges for g in graphs) / len(graphs)
                    if graphs
                    else float("nan")
                )
            else:
                raise ValueError(f"unknown quantity {quantity!r}")
            series.points.append(
                SeriesPoint(
                    alpha=alpha,
                    axis=per_edge_cost_axis(alpha, game),
                    value=value,
                    num_equilibria=len(graphs),
                )
            )
    return FigureData(
        n=n,
        quantity=quantity,
        ucg=ucg_series,
        bcg=bcg_series,
        description=f"dynamics-sampled equilibria on {n} vertices",
    )
