"""Plain-text rendering of experiment results.

The harness is headless (no plotting dependency), so every figure and table is
reproduced as a text table: the same rows and series the paper's plots show,
printable from the CLI, the examples and the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .figure_series import FigureData


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of rows as an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * widths[k] for k in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def format_figure(figure: FigureData, title: Optional[str] = None) -> str:
    """Render a :class:`FigureData` (Figure 2/3-style) as a text table.

    One row per grid point: the total per-edge cost axis, the per-game link
    costs, the per-game values and the per-game equilibrium counts.
    """
    headers = [
        "log(edge cost)",
        "alpha_ucg",
        f"ucg {figure.quantity}",
        "#eq_ucg",
        "alpha_bcg",
        f"bcg {figure.quantity}",
        "#eq_bcg",
    ]
    rows = []
    for ucg_point, bcg_point in zip(figure.ucg.points, figure.bcg.points):
        rows.append(
            [
                ucg_point.axis,
                ucg_point.alpha,
                ucg_point.value,
                ucg_point.num_equilibria,
                bcg_point.alpha,
                bcg_point.value,
                bcg_point.num_equilibria,
            ]
        )
    table = format_table(headers, rows)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"population: {figure.description}")
    crossover = figure.crossover_cost()
    if figure.quantity == "average_poa":
        if crossover is None:
            lines.append("no UCG/BCG crossover on this grid")
        else:
            lines.append(
                f"BCG average PoA becomes worse than UCG near total edge cost "
                f"{crossover:.3g}"
            )
    lines.append(table)
    return "\n".join(lines)


def store_summary_dict(store, source: Optional[str] = None) -> dict:
    """Machine-readable :class:`~repro.analysis.store.CensusStore` summary.

    The one JSON-safe summary shape the service layer, the ``census``
    subcommand and :func:`format_store_summary` all share: the store's own
    :meth:`~repro.analysis.store.CensusStore.summary` plus a ``kind`` tag
    and the ``source`` provenance, so no consumer has to parse the
    rendered table.
    """
    summary = dict(store.summary())
    summary["kind"] = "census"
    summary["source"] = source
    return summary


def weighted_store_summary_dict(store, source: Optional[str] = None) -> dict:
    """Machine-readable :class:`~repro.analysis.weighted_store.WeightedStore`
    summary (same shape contract as :func:`store_summary_dict`)."""
    summary = dict(store.summary())
    summary["kind"] = "weighted"
    summary["source"] = source
    return summary


def delta_store_summary_dict(store, source: Optional[str] = None) -> dict:
    """Machine-readable :class:`~repro.analysis.delta_store.DeltaStore`
    summary (same shape contract as :func:`store_summary_dict`)."""
    summary = dict(store.summary())
    summary["kind"] = "delta"
    summary["source"] = source
    return summary


def _as_summary(store_or_summary, kind_builder, source: Optional[str]) -> dict:
    """Accept either a store object or an already-built summary dict.

    Rendering from the dict keeps presentation code off store internals —
    the CLI and the HTTP service both hand the same machine-readable
    summary to the same renderer.
    """
    if isinstance(store_or_summary, dict):
        summary = dict(store_or_summary)
        if source is not None:
            summary["source"] = source
        return summary
    return kind_builder(store_or_summary, source=source)


def format_store_summary(store, source: Optional[str] = None) -> str:
    """Render a :class:`~repro.analysis.store.CensusStore` artifact summary.

    One line of provenance plus a per-column size table — what the CLI
    ``census`` subcommand prints so operators can see what an artifact
    holds (and costs in resident memory) without loading records.
    ``store`` may be the store itself or a :func:`store_summary_dict`
    payload (the machine-readable twin of this table).
    """
    summary = _as_summary(store, store_summary_dict, source)
    source = summary.get("source")
    lines = [
        (
            f"census store: n = {summary['n']}, {summary['classes']} classes, "
            f"ucg = {'yes' if summary['include_ucg'] else 'no'}, "
            f"format v{summary['format_version']}, "
            f"{summary['nbytes'] / 1e6:.2f} MB resident"
        )
    ]
    if source:
        lines.append(f"source: {source}")
    rows = [
        [name, size, f"{size / max(1, summary['classes']):.1f}"]
        for name, size in sorted(summary["column_bytes"].items())
    ]
    lines.append(format_table(["column", "bytes", "bytes/class"], rows))
    return "\n".join(lines)


def format_weighted_store_summary(store, source: Optional[str] = None) -> str:
    """Render a :class:`~repro.analysis.weighted_store.WeightedStore` summary.

    Mirrors :func:`format_store_summary` for the weighted artifacts: one
    provenance line (scenario recipe included when the artifact carries
    one) plus the per-column size table.  ``store`` may be the store
    itself or a :func:`weighted_store_summary_dict` payload.
    """
    summary = _as_summary(store, weighted_store_summary_dict, source)
    source = summary.get("source")
    scenario = summary["scenario"] or "ad-hoc model"
    seed = summary["seed"]
    lines = [
        (
            f"weighted store: n = {summary['n']}, {summary['classes']} "
            f"classes, scenario = {scenario}"
            + (f" (seed {seed})" if seed is not None else "")
            + f", format v{summary['format_version']}, "
            f"{summary['nbytes'] / 1e6:.2f} MB resident"
        )
    ]
    if source:
        lines.append(f"source: {source}")
    if summary["scenario_params"]:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(summary["scenario_params"].items())
            if key not in ("name", "n", "seed")
        )
        if params:
            lines.append(f"params: {params}")
    rows = [
        [name, size, f"{size / max(1, summary['classes']):.1f}"]
        for name, size in sorted(summary["column_bytes"].items())
    ]
    lines.append(format_table(["column", "bytes", "bytes/class"], rows))
    return "\n".join(lines)


def format_ascii_series(
    values: Sequence[float], width: int = 40, label: str = ""
) -> str:
    """A crude ASCII sparkline of a series (for quick terminal inspection)."""
    finite = [v for v in values if v == v and v not in (float("inf"), float("-inf"))]
    if not finite:
        return f"{label} (no finite data)"
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    blocks = " .:-=+*#%@"
    chars = []
    for v in values:
        if v != v or v in (float("inf"), float("-inf")):
            chars.append("?")
        else:
            level = int((v - lo) / span * (len(blocks) - 1))
            chars.append(blocks[level])
    return f"{label}[{''.join(chars[:width])}]  min={lo:.3g} max={hi:.3g}"
