"""Dynamics-based sampling of equilibrium networks for larger player counts.

The paper's empirical study uses ten agents, which is out of reach for an
exhaustive pure-Python census (there are ~11.7 million connected topologies on
ten vertices).  As documented in DESIGN.md we substitute a *sampled* census:
run the decentralised dynamics of :mod:`repro.core.dynamics` from many random
starting networks and collect the converged equilibria.  Duplicates (up to
isomorphism) are removed so the averages are over distinct topologies, like
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dynamics import sample_nash_networks_ucg, sample_stable_networks_bcg
from ..core.equilibria import is_pairwise_stable
from ..core.stability_intervals import PairwiseStabilityProfile
from ..engine import (
    DistanceOracle,
    batch_stability_deltas,
    numpy_available,
    ucg_alpha_sets,
)
from ..graphs import Graph, canonical_form
from .sweeps import aligned_link_costs, map_over_grid


def deduplicate_up_to_isomorphism(graphs: Sequence[Graph]) -> List[Graph]:
    """Keep one representative per isomorphism class, preserving first-seen order."""
    seen = set()
    unique: List[Graph] = []
    for graph in graphs:
        key = canonical_form(graph)
        if key not in seen:
            seen.add(key)
            unique.append(graph)
    return unique


# --------------------------------------------------------------------------- #
# Store-backed sampling: columnar α-grid queries over sampled graph lists
# --------------------------------------------------------------------------- #


def sampled_bcg_profiles(
    graphs: Sequence[Graph], oracle: Optional[DistanceOracle] = None
) -> List[PairwiseStabilityProfile]:
    """Stability profiles of an ad-hoc graph list via the batched engine.

    One call to :func:`repro.engine.batch_stability_deltas` answers every
    single-link deviation probe of every sampled graph (batched boolean
    matmuls where NumPy is available), instead of a per-graph BFS loop.
    """
    results = batch_stability_deltas(list(graphs), oracle=oracle)
    return [
        PairwiseStabilityProfile(
            graph=graph, removal_increase=removal, addition_saving=addition
        )
        for graph, (removal, addition) in zip(graphs, results)
    ]


def sampled_bcg_columns(
    graphs: Sequence[Graph], oracle: Optional[DistanceOracle] = None
):
    """BCG α-decision columns for a sampled graph list.

    Routes the sampled graphs through
    :func:`repro.analysis.store.bcg_alpha_columns`, so dynamics-sampled runs
    get the same vectorised whole-α-grid queries as the exhaustive census
    store; returns ``(rem_min, add_lo, add_hi, add_indptr)``.  Requires
    NumPy (like every columnar consumer).
    """
    from .store import bcg_alpha_columns

    return bcg_alpha_columns(sampled_bcg_profiles(graphs, oracle=oracle))


def sampled_stable_mask(
    graphs: Sequence[Graph],
    alphas: Sequence[float],
    oracle: Optional[DistanceOracle] = None,
):
    """``bool[n_graphs, n_alphas]`` pairwise-stability mask of sampled graphs.

    Vectorised through :func:`repro.engine.columnar.bcg_stable_mask` when
    NumPy is importable (bit-identical to the per-graph Definition 3
    check); a per-profile Python loop otherwise.
    """
    if not numpy_available():
        profiles = sampled_bcg_profiles(graphs, oracle=oracle)
        return [
            [profile.is_stable_at(alpha) for alpha in alphas]
            for profile in profiles
        ]
    from ..engine.columnar import bcg_stable_mask

    rem_min, add_lo, add_hi, add_indptr = sampled_bcg_columns(graphs, oracle=oracle)
    return bcg_stable_mask(rem_min, add_lo, add_hi, add_indptr, alphas)


def sampled_stable_counts(
    graphs: Sequence[Graph],
    alphas: Sequence[float],
    oracle: Optional[DistanceOracle] = None,
) -> List[int]:
    """Stable-graph counts of a sampled list at every grid point."""
    mask = sampled_stable_mask(graphs, alphas, oracle=oracle)
    return [
        sum(1 for row in mask if row[column]) for column in range(len(alphas))
    ]


@dataclass
class SampledEquilibria:
    """Sampled equilibrium networks of both games at one total per-edge cost."""

    n: int
    total_edge_cost: float
    alpha_ucg: float
    alpha_bcg: float
    ucg: List[Graph]
    bcg: List[Graph]


def sample_equilibria_at_cost(
    n: int,
    total_edge_cost: float,
    num_samples: int = 20,
    seed: int = 0,
    verify: bool = False,
    jobs: Optional[int] = None,
) -> SampledEquilibria:
    """Sample UCG Nash networks and BCG pairwise-stable networks at one cost.

    ``verify=True`` re-checks every sampled network with the exact
    equilibrium tests (slower; used by the integration tests).  ``jobs``
    fans the independent seeded dynamics runs out over a process pool;
    results are identical for any value.
    """
    alpha_ucg, alpha_bcg = aligned_link_costs(total_edge_cost)
    ucg_samples = deduplicate_up_to_isomorphism(
        sample_nash_networks_ucg(n, alpha_ucg, num_samples, seed=seed, jobs=jobs)
    )
    bcg_samples = deduplicate_up_to_isomorphism(
        sample_stable_networks_bcg(n, alpha_bcg, num_samples, seed=seed + 1, jobs=jobs)
    )
    if verify:
        # One batched engine pass replaces the per-sample orientation
        # backtrack; containment matches is_nash_graph_ucg exactly (same
        # AlphaIntervalSet, same tolerance).
        ucg_sets = ucg_alpha_sets(ucg_samples)
        ucg_samples = [
            g
            for g, alpha_set in zip(ucg_samples, ucg_sets)
            if alpha_set.contains(alpha_ucg)
        ]
        bcg_samples = [g for g in bcg_samples if is_pairwise_stable(g, alpha_bcg)]
    return SampledEquilibria(
        n=n,
        total_edge_cost=total_edge_cost,
        alpha_ucg=alpha_ucg,
        alpha_bcg=alpha_bcg,
        ucg=ucg_samples,
        bcg=bcg_samples,
    )


def _sample_grid_point(
    args: Tuple[int, float, int, int]
) -> Tuple[float, List[Graph], List[Graph]]:
    """Sampled equilibria at one grid point (module-level for the pool)."""
    n, cost, num_samples, point_seed = args
    sampled = sample_equilibria_at_cost(n, cost, num_samples=num_samples, seed=point_seed)
    return cost, sampled.ucg, sampled.bcg


def sample_equilibria_over_grid(
    n: int,
    total_edge_costs: Sequence[float],
    num_samples: int = 20,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[float, Dict[str, List[Graph]]]:
    """Sampled equilibria for every cost on a grid, keyed for the figure builders.

    ``jobs`` fans the grid points out over a process pool via
    :func:`repro.analysis.sweeps.map_over_grid`; each point derives its own
    seed from its grid index, so parallel and serial sweeps agree exactly.
    """
    tasks = [
        (n, cost, num_samples, seed + 997 * index)
        for index, cost in enumerate(total_edge_costs)
    ]
    result: Dict[float, Dict[str, List[Graph]]] = {}
    for cost, ucg, bcg in map_over_grid(_sample_grid_point, tasks, jobs=jobs):
        result[cost] = {"ucg": ucg, "bcg": bcg}
    return result
