"""Weighted census/sweep path: whole-``t``-grid stability over many graphs.

The scalar censuses decide equilibrium membership for every isomorphism
class on an α-grid.  Heterogeneous link costs break isomorphism invariance —
relabelling a graph moves its vertices onto different prices — so the
weighted path sweeps an explicit list of *labelled* graphs under one
:class:`~repro.costmodels.models.CostModel` ``W``, over a grid of scales
``t`` (the game at each grid point is ``C = t·W``).
:func:`weighted_census` instantiates the sweep on the canonical
representatives of every connected isomorphism class, which keeps the
scalar census shape: with a uniform model the per-class answers are exactly
the scalar census's (asserted float-exactly in the test suite), while a
heterogeneous model measures how the chosen labelling interacts with the
price structure — the point of the scenario library
(:mod:`repro.analysis.scenarios`).

Two execution paths, one contract:

* with NumPy, probes are batched through
  :func:`repro.engine.batch.batch_weighted_columns` (the boolean-matmul
  delta tensors paired with per-probe coefficient vectors) and whole grids
  are answered by :func:`repro.engine.columnar.weighted_bcg_stable_mask`;
* without it, every graph gets a per-graph
  :class:`~repro.costmodels.stability.WeightedStabilityProfile` loop
  (:func:`weighted_python_sweep_bcg` — also the reference implementation
  the engine path is benchmarked and tested against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..costmodels.models import CostModel
from ..costmodels.stability import weighted_stability_profile
from ..engine import chunk_evenly, numpy_available, parallel_map, resolve_jobs
from ..engine.oracle import DistanceOracle
from ..graphs import Graph, enumerate_connected_graphs, total_distance


def _require_same_n(graphs: Sequence[Graph]) -> int:
    sizes = {graph.n for graph in graphs}
    if len(sizes) > 1:
        raise ValueError(
            f"a weighted sweep needs graphs on one vertex set, got n in {sorted(sizes)}"
        )
    return sizes.pop() if sizes else 0


def weighted_python_sweep_bcg(
    graphs: Sequence[Graph],
    model: CostModel,
    ts: Sequence[float],
    oracle: Optional[DistanceOracle] = None,
) -> List[List[bool]]:
    """Reference per-graph weighted stability sweep (no NumPy required).

    Returns ``mask[i][j]`` = graph ``i`` pairwise stable under ``ts[j]·W``,
    decision-identical to the vectorised engine path (which is benchmarked
    against this loop in ``benchmarks/bench_engine.py``).
    """
    if oracle is None:
        oracle = DistanceOracle()
    mask: List[List[bool]] = []
    for graph in graphs:
        profile = weighted_stability_profile(graph, model, oracle=oracle)
        mask.append([profile.is_stable_at(t) for t in ts])
    return mask


def weighted_bcg_grid_mask(
    graphs: Sequence[Graph],
    model: CostModel,
    ts: Sequence[float],
    oracle: Optional[DistanceOracle] = None,
):
    """``bool[n_graphs, n_ts]`` weighted stability mask over a scale grid.

    Vectorised through the engine when NumPy is importable (returns an
    ndarray), per-graph otherwise (returns a list of lists); decisions are
    identical either way.
    """
    if not numpy_available():
        return weighted_python_sweep_bcg(graphs, model, ts, oracle=oracle)
    from ..engine.batch import batch_weighted_columns
    from ..engine.columnar import weighted_bcg_stable_mask

    n = _require_same_n(graphs)
    columns = batch_weighted_columns(graphs, model.matrix(n), oracle=oracle)
    return weighted_bcg_stable_mask(
        columns["rem_w"], columns["rem_delta"], columns["rem_indptr"],
        columns["add_w_u"], columns["add_s_u"],
        columns["add_w_v"], columns["add_s_v"], columns["add_indptr"],
        ts,
    )


def weighted_t_windows(
    graphs: Sequence[Graph],
    model: CostModel,
    oracle: Optional[DistanceOracle] = None,
) -> Tuple[List[float], List[float]]:
    """Per-graph ``(t_min, t_max)`` stabilising-scale windows under ``W``."""
    if not numpy_available():
        if oracle is None:
            oracle = DistanceOracle()
        pairs = [
            weighted_stability_profile(g, model, oracle=oracle).stability_t_interval()
            for g in graphs
        ]
        return [lo for lo, _ in pairs], [hi for _, hi in pairs]
    from ..engine.batch import batch_weighted_columns
    from ..engine.columnar import weighted_stability_windows

    n = _require_same_n(graphs)
    columns = batch_weighted_columns(graphs, model.matrix(n), oracle=oracle)
    t_min, t_max = weighted_stability_windows(
        columns["rem_w"], columns["rem_delta"], columns["rem_indptr"],
        columns["add_w_u"], columns["add_s_u"],
        columns["add_w_v"], columns["add_s_v"], columns["add_indptr"],
    )
    return t_min.tolist(), t_max.tolist()


def _weighted_ucg_intervals_chunk(task):
    """Pool worker: weighted UCG Nash t-intervals of a chunk of graphs.

    Runs the vectorised orientation engine (:mod:`repro.engine.ucg`) over
    the whole chunk — which itself falls back to the per-graph
    :func:`weighted_ucg_nash_t_set` backtracking when NumPy is missing, so
    the worker is exact in every environment.
    """
    graphs, model = task
    from ..engine.ucg import weighted_ucg_t_sets

    return [
        [(interval.lo, interval.hi) for interval in t_set.intervals]
        for t_set in weighted_ucg_t_sets(graphs, model)
    ]


def weighted_ucg_grid_mask(
    graphs: Sequence[Graph],
    model: CostModel,
    ts: Sequence[float],
    jobs: Optional[int] = None,
):
    """``bool[n_graphs, n_ts]`` weighted UCG Nash-supportability mask.

    The t-intervals come from the vectorised orientation engine
    (:func:`repro.engine.ucg.weighted_ucg_t_sets`, float-exact against the
    per-graph backtracking), chunked over ``jobs`` workers; the grid
    membership test itself is one vectorised interval-containment pass when
    NumPy is available.
    """
    graphs = list(graphs)
    workers = resolve_jobs(jobs)
    chunks = chunk_evenly(graphs, max(1, workers * 4))
    chunk_lists = parallel_map(
        _weighted_ucg_intervals_chunk,
        [(chunk, model) for chunk in chunks],
        jobs=jobs,
    )
    interval_lists = [
        intervals for chunk in chunk_lists for intervals in chunk
    ]
    if not numpy_available():
        from ..core.stability_intervals import AlphaInterval, AlphaIntervalSet

        return [
            [
                AlphaIntervalSet(
                    [AlphaInterval(lo, hi) for lo, hi in intervals]
                ).contains(t)
                for t in ts
            ]
            for intervals in interval_lists
        ]
    import numpy as np

    from ..engine.columnar import ucg_nash_mask

    iv_lo: List[float] = []
    iv_hi: List[float] = []
    counts: List[int] = []
    for intervals in interval_lists:
        for lo, hi in intervals:
            iv_lo.append(lo)
            iv_hi.append(hi)
        counts.append(len(intervals))
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(np.asarray(counts, dtype=np.int64), out=indptr[1:])
    return ucg_nash_mask(
        np.asarray(iv_lo, dtype=np.float64),
        np.asarray(iv_hi, dtype=np.float64),
        indptr,
        ts,
    )


def sweep_grid_aggregates(
    mask,
    ts: Sequence[float],
    num_edges: Sequence[int],
    edge_cost_totals: Sequence[float],
    dist_totals: Sequence[float],
) -> Tuple[List[int], List[float], List[float]]:
    """Per-grid-point ``(counts, avg links, avg social cost)`` from a mask.

    The one aggregation loop both :func:`weighted_sweep` and
    :meth:`repro.analysis.weighted_store.WeightedStore.aggregates` answer
    from — kept in a single place so the store's "float-exact vs the
    in-memory sweep" contract is structural, not a coincidence of two
    copies: same selected order, same left-to-right summation, ``nan`` for
    grid points with no stable class.  ``mask[i][column]`` may be a NumPy
    array or a list of lists.
    """
    bcg_counts: List[int] = []
    average_links: List[float] = []
    average_social_cost: List[float] = []
    for column, t in enumerate(ts):
        selected = [i for i in range(len(num_edges)) if mask[i][column]]
        bcg_counts.append(len(selected))
        if not selected:
            average_links.append(float("nan"))
            average_social_cost.append(float("nan"))
            continue
        average_links.append(
            sum(num_edges[i] for i in selected) / len(selected)
        )
        average_social_cost.append(
            sum(t * edge_cost_totals[i] + dist_totals[i] for i in selected)
            / len(selected)
        )
    return bcg_counts, average_links, average_social_cost


@dataclass
class WeightedSweepResult:
    """A weighted stability sweep over one graph list, model and scale grid."""

    n: int
    model: CostModel
    ts: List[float]
    graphs: List[Graph]
    #: ``mask[i][j]`` — graph ``i`` pairwise stable under ``ts[j]·W``.
    bcg_mask: object
    #: Stable-graph count per grid point.
    bcg_counts: List[int]
    #: Per-graph stabilising-scale windows ``(t_min, t_max)``.
    t_min: List[float]
    t_max: List[float]
    #: Mean edge count over the stable graphs per grid point (``nan`` if none).
    average_links: List[float]
    #: Mean weighted social cost over the stable graphs per grid point.
    average_social_cost: List[float]
    #: UCG Nash mask / counts (only with ``include_ucg=True``).
    ucg_mask: object = None
    ucg_counts: Optional[List[int]] = None
    #: Per-graph scale-independent quantities backing the aggregates.
    edge_cost_totals: List[float] = field(default_factory=list)
    dist_totals: List[float] = field(default_factory=list)

    def stable_graphs_at(self, index: int) -> List[Graph]:
        """The graphs stable at grid point ``index`` (BCG)."""
        return [g for g, row in zip(self.graphs, self.bcg_mask) if row[index]]


def weighted_sweep(
    graphs: Sequence[Graph],
    model: CostModel,
    ts: Sequence[float],
    include_ucg: bool = False,
    jobs: Optional[int] = None,
    oracle: Optional[DistanceOracle] = None,
) -> WeightedSweepResult:
    """Sweep weighted stability of ``graphs`` under ``t·W`` over a ``t``-grid.

    The BCG mask and windows ride the vectorised engine path; the social
    cost at each grid point is assembled from two scale-independent
    per-graph numbers (the unscaled link spend ``Σ_e (w_u + w_v)`` and the
    distance total), so the whole sweep runs the deviation analysis exactly
    once.  ``include_ucg=True`` adds the (much slower) per-graph weighted
    orientation search, fanned out over ``jobs`` workers.
    """
    graphs = list(graphs)
    ts = [float(t) for t in ts]
    n = _require_same_n(graphs)
    if numpy_available():
        from ..engine.batch import batch_weighted_columns
        from ..engine.columnar import weighted_bcg_stable_mask, weighted_stability_windows

        columns = batch_weighted_columns(graphs, model.matrix(n), oracle=oracle)
        probe_columns = (
            columns["rem_w"], columns["rem_delta"], columns["rem_indptr"],
            columns["add_w_u"], columns["add_s_u"],
            columns["add_w_v"], columns["add_s_v"], columns["add_indptr"],
        )
        mask = weighted_bcg_stable_mask(*probe_columns, ts)
        t_min_column, t_max_column = weighted_stability_windows(*probe_columns)
        t_min, t_max = t_min_column.tolist(), t_max_column.tolist()
        dist_totals = columns["dist_total"].tolist()
        num_edges = [int(m) for m in columns["num_edges"]]
    else:
        if oracle is None:
            oracle = DistanceOracle()
        profiles = [
            weighted_stability_profile(g, model, oracle=oracle) for g in graphs
        ]
        mask = [[profile.is_stable_at(t) for t in ts] for profile in profiles]
        t_min = [profile.t_min for profile in profiles]
        t_max = [profile.t_max for profile in profiles]
        dist_totals = [total_distance(g) for g in graphs]
        num_edges = [g.num_edges for g in graphs]
    edge_cost_totals = [model.bcg_edge_cost_total(g) for g in graphs]

    bcg_counts, average_links, average_social_cost = sweep_grid_aggregates(
        mask, ts, num_edges, edge_cost_totals, dist_totals
    )

    ucg_mask = None
    ucg_counts = None
    if include_ucg:
        ucg_mask = weighted_ucg_grid_mask(graphs, model, ts, jobs=jobs)
        ucg_counts = [
            sum(1 for i in range(len(graphs)) if ucg_mask[i][column])
            for column in range(len(ts))
        ]

    return WeightedSweepResult(
        n=n,
        model=model,
        ts=ts,
        graphs=graphs,
        bcg_mask=mask,
        bcg_counts=bcg_counts,
        t_min=t_min,
        t_max=t_max,
        average_links=average_links,
        average_social_cost=average_social_cost,
        ucg_mask=ucg_mask,
        ucg_counts=ucg_counts,
        edge_cost_totals=edge_cost_totals,
        dist_totals=dist_totals,
    )


def weighted_census(
    n: int,
    model: CostModel,
    ts: Sequence[float],
    include_ucg: bool = False,
    jobs: Optional[int] = None,
    delta=None,
) -> WeightedSweepResult:
    """The weighted sweep over every connected isomorphism class on ``n``.

    Uses the canonical class representatives in census order, so row ``i``
    here and row ``i`` of the scalar census/store describe the same class;
    with a uniform unit model and ``ts`` equal to the α-grid the mask is
    float-exactly the scalar ``stable_mask``.

    Passing a shared :class:`~repro.analysis.delta_store.DeltaStore` as
    ``delta`` skips the deviation pass entirely: the weight columns are
    gathered from the model's coefficient matrix at the stored probe
    endpoints (via :meth:`WeightedStore.from_delta`), float-for-float
    identical to the recomputing path.
    """
    if delta is not None:
        from .weighted_store import WeightedStore

        if delta.n != int(n):
            raise ValueError(
                f"delta store is for n = {delta.n}, census asked for n = {n}"
            )
        ts = [float(t) for t in ts]
        store = WeightedStore.from_delta(delta, model)
        mask = store.stable_mask(ts)
        t_min_column, t_max_column = store.stability_windows()
        num_edges = [int(m) for m in store.num_edges]
        edge_cost_totals = store.edge_cost_total.tolist()
        dist_totals = store.dist_total.tolist()
        bcg_counts, average_links, average_social_cost = sweep_grid_aggregates(
            mask, ts, num_edges, edge_cost_totals, dist_totals
        )
        graphs = [delta.graph_at(index) for index in range(len(delta))]
        ucg_mask = None
        ucg_counts = None
        if include_ucg:
            ucg_mask = weighted_ucg_grid_mask(graphs, model, ts, jobs=jobs)
            ucg_counts = [
                sum(1 for i in range(len(graphs)) if ucg_mask[i][column])
                for column in range(len(ts))
            ]
        return WeightedSweepResult(
            n=int(n),
            model=model,
            ts=ts,
            graphs=graphs,
            bcg_mask=mask,
            bcg_counts=bcg_counts,
            t_min=t_min_column.tolist(),
            t_max=t_max_column.tolist(),
            average_links=average_links,
            average_social_cost=average_social_cost,
            ucg_mask=ucg_mask,
            ucg_counts=ucg_counts,
            edge_cost_totals=edge_cost_totals,
            dist_totals=dist_totals,
        )
    return weighted_sweep(
        enumerate_connected_graphs(n), model, ts, include_ucg=include_ucg, jobs=jobs
    )
