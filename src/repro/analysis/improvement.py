"""Improvement dynamics over the full space of labelled networks.

Section 6 of the paper points to *dynamic, on-going network formation* as the
natural next step, and footnote 22 cites the stochastic-stability literature
(Tercieux & Vannetelbosch).  This module provides that machinery for small
player counts:

* the **improvement graph**: one node per labelled network on ``n`` players,
  with a directed edge for every myopic single-link move allowed by the BCG
  rules (add a missing link when it weakly benefits both endpoints and
  strictly benefits at least one; sever an existing link when either endpoint
  strictly benefits);
* its **sinks**, which coincide with the pairwise-stable networks of
  Definition 3 (verified by the ``ext_dynamics`` experiment and the tests);
* a **perturbed best-response Markov chain** — each step a uniformly random
  pair is selected and plays the myopic rule with probability ``1 - ε`` and
  mutates (toggles the link) with probability ``ε`` — whose stationary
  distribution identifies the *stochastically stable* networks: those that
  retain probability mass as ``ε → 0``.

The state space has ``2^(n(n-1)/2)`` labelled networks, so this is meant for
``n ≤ 5`` (1024 states) or ``n = 6`` (32768 states, slower); that is enough to
see which of the many pairwise-stable topologies the noisy decentralised
process actually selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import DistanceOracle, get_default_oracle
from ..graphs import Graph, canonical_form

Edge = Tuple[int, int]


def _pairs(n: int) -> List[Edge]:
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


def graph_to_mask(graph: Graph, pairs: Sequence[Edge] = None) -> int:
    """Encode a labelled graph as a bitmask over the vertex pairs."""
    pairs = pairs if pairs is not None else _pairs(graph.n)
    mask = 0
    for index, (u, v) in enumerate(pairs):
        if graph.has_edge(u, v):
            mask |= 1 << index
    return mask


def mask_to_graph(n: int, mask: int, pairs: Sequence[Edge] = None) -> Graph:
    """Decode a pair bitmask back into a labelled graph on ``n`` vertices."""
    pairs = pairs if pairs is not None else _pairs(n)
    edges = [pairs[index] for index in range(len(pairs)) if mask >> index & 1]
    return Graph(n, edges)


def _pair_deltas(
    graph: Graph, u: int, v: int, oracle: Optional[DistanceOracle] = None
) -> Tuple[float, float]:
    """Per-endpoint cost deltas (excluding ``α``) of toggling the pair ``(u, v)``.

    Returns the *distance* change of ``u`` and ``v`` when the link is toggled;
    the caller combines them with the ``±α`` link-cost terms.  The toggle
    deltas come straight from the shared :class:`~repro.engine.DistanceOracle`,
    so scanning all ``2^(n(n-1)/2)`` labelled networks re-uses every cached
    vector.
    """
    if oracle is None:
        oracle = get_default_oracle()
    delta_u = oracle.toggle_delta(graph, (u, v), u)
    delta_v = oracle.toggle_delta(graph, (u, v), v)
    return delta_u, delta_v


def myopic_move(
    graph: Graph, u: int, v: int, alpha: float, oracle: Optional[DistanceOracle] = None
) -> Graph:
    """Apply the BCG myopic rule to pair ``(u, v)`` and return the next network.

    * If the link exists, it is severed when either endpoint strictly gains.
    * If the link is missing, it is added when one endpoint strictly gains and
      the other at least weakly gains.
    * Otherwise the network is unchanged.
    """
    delta_u, delta_v = _pair_deltas(graph, u, v, oracle=oracle)
    if graph.has_edge(u, v):
        gain_u = alpha - delta_u  # severing saves α and costs the distance increase
        gain_v = alpha - delta_v
        if gain_u > 1e-12 or gain_v > 1e-12:
            return graph.remove_edge(u, v)
        return graph
    gain_u = -delta_u - alpha  # adding saves distance (delta is negative) and costs α
    gain_v = -delta_v - alpha
    if (gain_u > 1e-12 and gain_v >= -1e-12) or (gain_v > 1e-12 and gain_u >= -1e-12):
        return graph.add_edge(u, v)
    return graph


@dataclass
class ImprovementGraph:
    """The myopic single-link improvement dynamics over all labelled networks."""

    n: int
    alpha: float
    pairs: List[Edge]
    successors: Dict[int, List[int]]

    @property
    def num_states(self) -> int:
        """Number of labelled networks (``2^(n(n-1)/2)``)."""
        return 1 << len(self.pairs)

    def sinks(self) -> List[int]:
        """States with no outgoing improving move (the dynamics' fixed points)."""
        return [state for state, succ in self.successors.items() if not succ]

    def sink_graphs(self) -> List[Graph]:
        """The fixed-point networks as :class:`Graph` objects."""
        return [mask_to_graph(self.n, state, self.pairs) for state in self.sinks()]

    def is_sink(self, graph: Graph) -> bool:
        """Whether ``graph`` is a fixed point of the improvement dynamics."""
        return not self.successors[graph_to_mask(graph, self.pairs)]


def build_improvement_graph(n: int, alpha: float) -> ImprovementGraph:
    """Enumerate every labelled network and its improving single-link moves."""
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    pairs = _pairs(n)
    successors: Dict[int, List[int]] = {}
    for state in range(1 << len(pairs)):
        graph = mask_to_graph(n, state, pairs)
        moves = []
        for (u, v) in pairs:
            nxt = myopic_move(graph, u, v, alpha)
            if nxt is not graph and nxt != graph:
                moves.append(graph_to_mask(nxt, pairs))
        successors[state] = moves
    return ImprovementGraph(n=n, alpha=alpha, pairs=pairs, successors=successors)


# --------------------------------------------------------------------------- #
# Perturbed dynamics and stochastic stability
# --------------------------------------------------------------------------- #


def perturbed_transition_matrix(
    improvement: ImprovementGraph, epsilon: float
):
    """Transition matrix of the ε-perturbed myopic pair dynamics.

    Each step selects a vertex pair uniformly at random.  With probability
    ``1 - ε`` the pair plays the myopic BCG rule; with probability ``ε`` the
    link is toggled regardless (a mutation).  Returns a dense numpy array of
    shape ``(num_states, num_states)``.
    """
    import numpy

    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie strictly between 0 and 1")
    pairs = improvement.pairs
    n_states = improvement.num_states
    matrix = numpy.zeros((n_states, n_states))
    pair_probability = 1.0 / len(pairs)
    for state in range(n_states):
        graph = mask_to_graph(improvement.n, state, pairs)
        for index, (u, v) in enumerate(pairs):
            intended = graph_to_mask(myopic_move(graph, u, v, improvement.alpha), pairs)
            mutated = state ^ (1 << index)
            matrix[state, intended] += pair_probability * (1.0 - epsilon)
            matrix[state, mutated] += pair_probability * epsilon
    return matrix


def stationary_distribution(matrix) -> "numpy.ndarray":
    """Stationary distribution of an irreducible finite Markov chain.

    Solves ``πP = π`` with the normalisation ``Σπ = 1`` as a linear system.
    """
    import numpy

    n_states = matrix.shape[0]
    system = numpy.vstack([matrix.T - numpy.eye(n_states), numpy.ones((1, n_states))])
    rhs = numpy.zeros(n_states + 1)
    rhs[-1] = 1.0
    solution, *_ = numpy.linalg.lstsq(system, rhs, rcond=None)
    solution = numpy.clip(solution, 0.0, None)
    return solution / solution.sum()


@dataclass
class StochasticStabilityResult:
    """Summary of the ε-perturbed dynamics at one link cost."""

    n: int
    alpha: float
    epsilon: float
    mass_on_sinks: float
    mass_by_canonical_class: Dict[Tuple[int, int], float]
    modal_graph: Graph

    def modal_class_mass(self) -> float:
        """Stationary mass of the most likely isomorphism class."""
        return max(self.mass_by_canonical_class.values())


def stochastic_stability_analysis(
    n: int, alpha: float, epsilon: float = 0.02
) -> StochasticStabilityResult:
    """Run the full perturbed-dynamics analysis at one link cost.

    Builds the improvement graph, the perturbed chain and its stationary
    distribution, and aggregates the probability mass by isomorphism class so
    the result is readable ("most of the time the process sits on a star").
    """
    improvement = build_improvement_graph(n, alpha)
    matrix = perturbed_transition_matrix(improvement, epsilon)
    pi = stationary_distribution(matrix)

    sink_states = set(improvement.sinks())
    mass_on_sinks = float(sum(pi[state] for state in sink_states))

    mass_by_class: Dict[Tuple[int, int], float] = {}
    best_state = int(pi.argmax())
    for state in range(improvement.num_states):
        graph = mask_to_graph(n, state, improvement.pairs)
        key = canonical_form(graph)
        mass_by_class[key] = mass_by_class.get(key, 0.0) + float(pi[state])
    return StochasticStabilityResult(
        n=n,
        alpha=alpha,
        epsilon=epsilon,
        mass_on_sinks=mass_on_sinks,
        mass_by_canonical_class=mass_by_class,
        modal_graph=mask_to_graph(n, best_state, improvement.pairs),
    )
