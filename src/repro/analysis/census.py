"""Exhaustive equilibrium censuses over all small connected topologies.

The empirical study of Section 5 computes *all* pairwise-stable graphs of the
BCG and *all* Nash graphs of the UCG on a fixed number of vertices, for a
range of link costs.  The expensive part — per-graph deviation analysis — does
not depend on ``α``:

* the BCG stability of a graph at any ``α`` is decided by its
  :class:`~repro.core.stability_intervals.PairwiseStabilityProfile`;
* the UCG Nash-supportability of a graph at any ``α`` is decided by its
  :class:`~repro.core.stability_intervals.AlphaIntervalSet`.

:class:`EquilibriumCensus` therefore enumerates the connected graphs once
(up to isomorphism), computes both per-graph summaries once, and then answers
equilibrium queries for arbitrary link costs in time linear in the number of
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.anarchy import price_of_anarchy
from ..core.stability_intervals import AlphaIntervalSet, PairwiseStabilityProfile
from ..engine import (
    batch_stability_deltas,
    chunk_evenly,
    get_default_oracle,
    parallel_map,
    resolve_jobs,
    run_shards,
    ucg_alpha_sets,
)
from ..graphs import (
    Graph,
    canonical_graph,
    class_sort_key,
    enumerate_connected_graphs,
    enumerate_graphs,
    is_connected,
    iter_graphs_from,
)
from ..graphs.isomorphism import clear_canonical_record


@dataclass
class GraphRecord:
    """Per-topology summary used by the census.

    Attributes
    ----------
    graph:
        The canonical representative of the isomorphism class.
    bcg_profile:
        Single-link deviation payoffs (α-independent BCG summary).
    ucg_alpha_set:
        Link costs at which the graph is UCG-Nash-supportable (``None`` when
        the census was built with ``include_ucg=False``).
    """

    graph: Graph
    bcg_profile: PairwiseStabilityProfile
    ucg_alpha_set: Optional[AlphaIntervalSet] = None

    @property
    def num_edges(self) -> int:
        """Number of edges of the topology."""
        return self.graph.num_edges

    def is_bcg_stable_at(self, alpha: float) -> bool:
        """Exact pairwise stability at ``alpha``."""
        return self.bcg_profile.is_stable_at(alpha)

    def is_ucg_nash_at(self, alpha: float) -> bool:
        """Exact UCG Nash-supportability at ``alpha``."""
        if self.ucg_alpha_set is None:
            raise ValueError("census was built without the UCG analysis")
        return self.ucg_alpha_set.contains(alpha)


@dataclass
class EquilibriumCensus:
    """All connected topologies on ``n`` vertices with their equilibrium summaries."""

    n: int
    records: List[GraphRecord] = field(default_factory=list)
    include_ucg: bool = True

    @classmethod
    def build(
        cls, n: int, include_ucg: bool = True, jobs: Optional[int] = None
    ) -> "EquilibriumCensus":
        """Enumerate all connected graphs on ``n`` vertices and analyse each once.

        ``include_ucg=False`` skips the (more expensive) UCG orientation
        search when only the BCG side is needed.  ``jobs`` fans the analysis
        out over a process pool (``None``/``1`` = serial); each worker runs
        the vectorised batch kernel on a contiguous chunk of graphs, so
        results are identical and identically ordered for any value.
        """
        graphs = enumerate_connected_graphs(n)
        workers = resolve_jobs(jobs)
        chunks = chunk_evenly(graphs, max(1, workers * 4))
        tasks = [(chunk, include_ucg) for chunk in chunks]
        records = [
            record
            for chunk_records in parallel_map(_analyse_chunk, tasks, jobs=jobs)
            for record in chunk_records
        ]
        return cls(n=n, records=records, include_ucg=include_ucg)

    @classmethod
    def build_streamed(
        cls,
        n: int,
        include_ucg: bool = True,
        jobs: Optional[int] = None,
        shard_level: Optional[int] = None,
        batch_size: int = 512,
    ) -> "EquilibriumCensus":
        """Build the census by streaming the canonical-augmentation tree.

        Instead of materialising ``enumerate_connected_graphs(n)`` up front
        (and, with ``jobs > 1``, pickling every graph through the pool), the
        generation tree is **sharded**: its level-``shard_level`` class
        representatives become roots, each worker re-generates the subtrees
        below its chunk of roots in-process (subtrees are disjoint and
        jointly exhaustive, so there is no cross-worker deduplication), and
        analyses graphs in bounded batches as they stream past.  Only the
        per-graph summaries travel back through the pool.

        The result is element-for-element identical to :meth:`build` — same
        canonical representatives in the same deterministic order, with
        bit-identical profiles — which the test suite asserts.  This is the
        path that makes the ``n = 9`` BCG census tractable.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        workers = resolve_jobs(jobs)
        if shard_level is None:
            shard_level = max(0, min(6, n - 2))
        shard_level = max(0, min(shard_level, n))
        roots = enumerate_graphs(shard_level)
        chunks = chunk_evenly(roots, max(1, workers * 4))
        tasks = [(chunk, n, include_ucg, batch_size) for chunk in chunks]
        # run_shards gives the record path the same crash-resilient fan-out
        # as the columnar stores (no persistence: GraphRecord parts are not
        # column dicts, and the store path owns the durable artifacts).
        report = run_shards(_stream_chunk, tasks, jobs=jobs)
        records = [
            record for chunk_records in report.parts for record in chunk_records
        ]
        records.sort(key=lambda record: class_sort_key(record.graph))
        return cls(n=n, records=records, include_ucg=include_ucg)

    # ------------------------------------------------------------------ #
    # Equilibrium sets at a given link cost
    # ------------------------------------------------------------------ #

    def stable_graphs_bcg(self, alpha: float) -> List[Graph]:
        """All pairwise-stable topologies at link cost ``alpha``."""
        return [r.graph for r in self.records if r.is_bcg_stable_at(alpha)]

    def nash_graphs_ucg(self, alpha: float) -> List[Graph]:
        """All UCG-Nash topologies at link cost ``alpha``."""
        return [r.graph for r in self.records if r.is_ucg_nash_at(alpha)]

    def equilibrium_graphs(self, alpha: float, game: str) -> List[Graph]:
        """Equilibrium topologies of either game at ``alpha``."""
        game = game.lower()
        if game == "bcg":
            return self.stable_graphs_bcg(alpha)
        if game == "ucg":
            return self.nash_graphs_ucg(alpha)
        raise ValueError("game must be 'bcg' or 'ucg'")

    # ------------------------------------------------------------------ #
    # Aggregates (the Figure 2 / Figure 3 quantities)
    # ------------------------------------------------------------------ #

    def average_price_of_anarchy(self, alpha: float, game: str) -> float:
        """Mean ``ρ(G)`` over the equilibrium topologies at ``alpha``."""
        graphs = self.equilibrium_graphs(alpha, game)
        if not graphs:
            return float("nan")
        return sum(price_of_anarchy(g, alpha, game) for g in graphs) / len(graphs)

    def worst_price_of_anarchy(self, alpha: float, game: str) -> float:
        """Maximum ``ρ(G)`` over the equilibrium topologies at ``alpha``."""
        graphs = self.equilibrium_graphs(alpha, game)
        if not graphs:
            return float("nan")
        return max(price_of_anarchy(g, alpha, game) for g in graphs)

    def average_num_links(self, alpha: float, game: str) -> float:
        """Mean edge count over the equilibrium topologies at ``alpha`` (Figure 3)."""
        graphs = self.equilibrium_graphs(alpha, game)
        if not graphs:
            return float("nan")
        return sum(g.num_edges for g in graphs) / len(graphs)

    def equilibrium_count(self, alpha: float, game: str) -> int:
        """Number of equilibrium topologies at ``alpha``."""
        return len(self.equilibrium_graphs(alpha, game))

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def edge_count_histogram(self, alpha: float, game: str) -> Dict[int, int]:
        """Histogram of edge counts over the equilibrium topologies at ``alpha``."""
        histogram: Dict[int, int] = {}
        for graph in self.equilibrium_graphs(alpha, game):
            histogram[graph.num_edges] = histogram.get(graph.num_edges, 0) + 1
        return dict(sorted(histogram.items()))

    def __len__(self) -> int:
        return len(self.records)


def _make_records(
    graphs: List[Graph], include_ucg: bool, oracle
) -> List[GraphRecord]:
    """Deviation analysis for a batch of graphs.

    The BCG side goes through the vectorised
    :func:`repro.engine.batch_stability_deltas` kernel for the whole batch
    at once (orbit-pruned on its per-graph paths); the UCG orientation
    search is batched through :func:`repro.engine.ucg_alpha_sets` (itself
    float-exact against, and falling back to, the per-graph backtracking).
    """
    deltas = batch_stability_deltas(graphs, oracle=oracle)
    ucg_sets = (
        ucg_alpha_sets(graphs, oracle=oracle)
        if include_ucg
        else [None] * len(graphs)
    )
    records = []
    for graph, (removal, addition), ucg_set in zip(graphs, deltas, ucg_sets):
        records.append(
            GraphRecord(
                graph=graph,
                bcg_profile=PairwiseStabilityProfile(
                    graph=graph,
                    removal_increase=removal,
                    addition_saving=addition,
                ),
                ucg_alpha_set=ucg_set,
            )
        )
    return records


def _analyse_chunk(task: Tuple[List[Graph], bool]) -> List[GraphRecord]:
    """Deviation analysis for a chunk of graphs (module-level for the pool)."""
    graphs, include_ucg = task
    return _make_records(graphs, include_ucg, get_default_oracle())


def _stream_chunk(task: Tuple[List[Graph], int, bool, int]) -> List[GraphRecord]:
    """Generate-and-analyse one shard of the generation tree (pool worker).

    Walks the canonical-augmentation subtrees below the chunk's roots,
    canonicalises the connected level-``n`` graphs as they stream past (the
    canonical search also yields the orbits the per-graph probe paths can
    prune on), and analyses them in bounded batches so the worker never
    materialises its shard.
    """
    roots, n, include_ucg, batch_size = task
    oracle = get_default_oracle()
    records: List[GraphRecord] = []
    pending: List[Graph] = []

    def flush() -> None:
        records.extend(_make_records(pending, include_ucg, oracle))
        for graph in pending:
            # The memoised canonical record has served its purpose; census
            # records live long, so don't pin a quarter-million of them.
            clear_canonical_record(graph)
        pending.clear()

    for root in roots:
        for graph in iter_graphs_from(root, n):
            if not is_connected(graph):
                continue
            pending.append(canonical_graph(graph))
            if len(pending) >= batch_size:
                flush()
    if pending:
        flush()
    return records


_CENSUS_CACHE: Dict[tuple, EquilibriumCensus] = {}


def cached_census(
    n: int, include_ucg: bool = True, jobs: Optional[int] = None
) -> EquilibriumCensus:
    """Build (or fetch) the census for ``n`` vertices; reused across experiments.

    ``jobs`` only affects how a *cache miss* is computed (serial vs process
    pool); the resulting census is identical either way, so it is not part of
    the cache key.
    """
    key = (n, include_ucg)
    if key not in _CENSUS_CACHE:
        _CENSUS_CACHE[key] = EquilibriumCensus.build(n, include_ucg=include_ucg, jobs=jobs)
    return _CENSUS_CACHE[key]


def clear_census_cache() -> None:
    """Drop the census cache (used by cold-start benchmarks)."""
    _CENSUS_CACHE.clear()
