"""Link-cost grids and axis conventions shared by the figure experiments.

Figures 2 and 3 of the paper plot quantities against the *logarithm* of the
link cost, and align the two games by per-edge total cost: the x-axis shows
``log(α)`` for the UCG but ``log(2α)`` for the BCG (a BCG edge costs ``2α``
in total because both endpoints pay).  The helpers here produce the grids and
the per-game link costs corresponding to a common axis value.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..engine import parallel_map

GridValue = TypeVar("GridValue")
GridResult = TypeVar("GridResult")


def log_spaced_alphas(
    minimum: float, maximum: float, count: int
) -> List[float]:
    """``count`` link costs spaced uniformly in log scale over ``[minimum, maximum]``."""
    if minimum <= 0 or maximum <= minimum:
        raise ValueError("need 0 < minimum < maximum")
    if count < 2:
        raise ValueError("need at least two grid points")
    log_lo, log_hi = math.log(minimum), math.log(maximum)
    step = (log_hi - log_lo) / (count - 1)
    return [math.exp(log_lo + k * step) for k in range(count)]


def linear_alphas(minimum: float, maximum: float, count: int) -> List[float]:
    """``count`` link costs spaced uniformly over ``[minimum, maximum]``."""
    if count < 2:
        raise ValueError("need at least two grid points")
    step = (maximum - minimum) / (count - 1)
    return [minimum + k * step for k in range(count)]


def default_alpha_grid(n: int, count: int = 24) -> List[float]:
    """The default grid used by the Figure 2/3 experiments.

    Spans from well below the ``α = 1`` efficiency threshold to ``n²`` (the
    paper notes all BCG equilibrium networks are trees for ``α > n²``), in
    log scale, so both the cheap-link and the expensive-link regimes of the
    figures are covered.
    """
    return log_spaced_alphas(0.2, float(n * n), count)


def per_edge_cost_axis(alpha: float, game: str) -> float:
    """The paper's x-axis value for a given per-player link cost.

    ``log(α)`` in the UCG and ``log(2α)`` in the BCG, i.e. the logarithm of
    the *total* cost of building one edge.
    """
    game = game.lower()
    if game == "ucg":
        return math.log(alpha)
    if game == "bcg":
        return math.log(2.0 * alpha)
    raise ValueError("game must be 'bcg' or 'ucg'")


def aligned_link_costs(total_edge_cost: float) -> Tuple[float, float]:
    """Per-player link costs ``(α_ucg, α_bcg)`` with the same total per-edge cost.

    A UCG edge costs ``α`` in total while a BCG edge costs ``2α``; aligning
    on total edge cost ``c`` therefore gives ``α_ucg = c`` and
    ``α_bcg = c / 2``.  This is the comparison the paper's figures make.
    """
    if total_edge_cost <= 0:
        raise ValueError("total edge cost must be positive")
    return total_edge_cost, total_edge_cost / 2.0


def aligned_cost_grid(n: int, count: int = 24) -> List[Tuple[float, float, float]]:
    """Grid of ``(total_edge_cost, α_ucg, α_bcg)`` triples for the figures."""
    grid = []
    for cost in log_spaced_alphas(0.4, 2.0 * n * n, count):
        alpha_ucg, alpha_bcg = aligned_link_costs(cost)
        grid.append((cost, alpha_ucg, alpha_bcg))
    return grid


def map_over_grid(
    fn: Callable[[GridValue], GridResult],
    grid: Sequence[GridValue],
    jobs: Optional[int] = None,
) -> List[GridResult]:
    """Evaluate ``fn`` at every grid point, optionally over a process pool.

    Grid points (link costs, total edge costs, ...) are independent, so the
    sweep fans out through :func:`repro.engine.parallel_map`; results come
    back in grid order for any ``jobs`` value.  ``fn`` must be picklable
    (module-level) when ``jobs > 1``.
    """
    return parallel_map(fn, grid, jobs=jobs)
