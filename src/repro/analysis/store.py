"""Columnar, persistent census store with vectorised α-grid queries.

:class:`~repro.analysis.census.EquilibriumCensus` keeps one
:class:`~repro.analysis.census.GraphRecord` per isomorphism class — a full
:class:`Graph` plus two dict-of-dicts — which makes the ``n = 9`` census a
multi-gigabyte object graph and forces every Figure 2/3 grid point to walk
all records in Python.  :class:`CensusStore` is the struct-of-arrays
refactor of the same information:

* **columns, not objects** — per class: a packed upper-triangle certificate
  (enough to rebuild the canonical representative), the edge count, the
  total ordered-pair distance sum, the exact BCG α-decision data (per-edge
  minimum removal increase and per-non-edge ``(min, max)`` addition-saving
  pairs in ragged CSR layout) and the UCG
  :class:`~repro.core.stability_intervals.AlphaIntervalSet` endpoints;
* **whole-grid queries** — Definition 3 stability masks, Nash masks,
  equilibrium counts, average/worst price of anarchy and link-count
  aggregates for an entire α-grid in a few segmented NumPy reductions
  (:mod:`repro.engine.columnar`), **bit-identical** to the per-record path
  (the BCG deviation payoffs are integer-valued floats, so the compact
  float32 columns and the reductions are exact; scalar float expressions
  are replicated operation for operation);
* **a versioned on-disk format** — one ``.npz`` (or a directory of
  memory-mappable ``.npy`` columns), resumable shard-by-shard when built
  with :meth:`build_streamed`.

:class:`EquilibriumCensus` remains the readable reference implementation and
compatibility view; the test suite asserts the store's answers equal the
record path element for element, including across a save → load round trip
in a separate process.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zipfile
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # NumPy backs every column; the store refuses to build without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..core.efficiency import efficient_social_cost
from ..core.stability_intervals import AlphaIntervalSet, PairwiseStabilityProfile
from ..engine import (
    batch_stability_deltas,
    chunk_evenly,
    content_checksum,
    get_default_oracle,
    parallel_map,
    resolve_jobs,
    run_shards,
    ucg_alpha_sets,
)
from ..engine.columnar import (
    bcg_stable_mask,
    canonical_sort_indices,
    certificate_to_graph,
    certificate_words,
    concat_csr,
    csr_invariant_errors,
    gather_segments,
    pack_certificates,
    segment_min,
    stability_windows,
    ucg_nash_mask,
)
from ..graphs import Graph, enumerate_connected_graphs, enumerate_graphs, is_connected
from ..graphs import canonical_graph, iter_graphs_from, total_distance
from ..graphs.isomorphism import clear_canonical_record

#: On-disk format version; bump on any incompatible schema change.
FORMAT_VERSION = 1

#: Schema tag written into every artifact (guards against loading foreign files).
SCHEMA = "repro-census-store"

#: Everything a store ``load`` can raise on a missing/corrupt/foreign
#: artifact — the one tuple CLI handlers and resume paths should catch.
LOAD_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile)

#: Dense per-class columns (name → dtype); ragged columns are listed below.
_DENSE_COLUMNS = ("num_edges", "dist_total", "cert_words")
_BCG_COLUMNS = ("rem_values", "rem_indptr", "add_lo", "add_hi", "add_indptr")
_UCG_COLUMNS = ("ucg_lo", "ucg_hi", "ucg_indptr")


def store_available() -> bool:
    """Whether the columnar store can be used (NumPy importable)."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "CensusStore requires NumPy; install numpy or use the "
            "per-record EquilibriumCensus path instead"
        )
    return _np


def _check_game(game: str) -> str:
    game = game.lower()
    if game not in ("bcg", "ucg"):
        raise ValueError("game must be 'bcg' or 'ucg'")
    return game


class CensusStore:
    """All connected topologies on ``n`` vertices, as queryable columns.

    Instances are produced by :meth:`build`, :meth:`build_streamed`,
    :meth:`from_census` or :meth:`load`; the constructor just wires up
    pre-validated columns.  Classes are kept in the library's canonical
    census order (:func:`repro.graphs.class_sort_key`), so row ``i`` of the
    store and ``census.records[i]`` describe the same isomorphism class.
    """

    def __init__(
        self,
        n: int,
        include_ucg: bool,
        num_edges,
        dist_total,
        cert_words,
        rem_values,
        rem_indptr,
        add_lo,
        add_hi,
        add_indptr,
        ucg_lo=None,
        ucg_hi=None,
        ucg_indptr=None,
    ) -> None:
        _require_numpy()
        self.n = int(n)
        self.include_ucg = bool(include_ucg)
        self.num_edges = num_edges
        self.dist_total = dist_total
        self.cert_words = cert_words
        self.rem_values = rem_values
        self.rem_indptr = rem_indptr
        self.add_lo = add_lo
        self.add_hi = add_hi
        self.add_indptr = add_indptr
        self.ucg_lo = ucg_lo
        self.ucg_hi = ucg_hi
        self.ucg_indptr = ucg_indptr
        self._rem_min = None  # lazy per-class α_max column
        self._m64 = None  # lazy float64 view of num_edges
        self._artifact_checksum = None  # checksum stamped on the loaded artifact

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls, n: int, include_ucg: bool = True, jobs: Optional[int] = None
    ) -> "CensusStore":
        """Enumerate all connected graphs on ``n`` vertices into columns.

        The enumeration and analysis mirror
        :meth:`EquilibriumCensus.build` exactly — same graphs, same order,
        same deviation analysis — but each pool worker emits **column
        chunks** (a dict of NumPy arrays) instead of pickled
        ``GraphRecord`` objects, so the artifact never exists in
        array-of-objects form.
        """
        _require_numpy()
        graphs = enumerate_connected_graphs(n)
        workers = resolve_jobs(jobs)
        chunks = chunk_evenly(graphs, max(1, workers * 4))
        tasks = [(chunk, n, include_ucg) for chunk in chunks]
        parts = parallel_map(_columns_chunk, tasks, jobs=jobs)
        # enumerate_connected_graphs is already canonically sorted and the
        # chunks preserve order, so no global sort is needed here.
        return cls._from_parts(n, include_ucg, parts)

    @classmethod
    def build_streamed(
        cls,
        n: int,
        include_ucg: bool = True,
        jobs: Optional[int] = None,
        shard_level: Optional[int] = None,
        batch_size: int = 512,
        shard_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        progress=None,
        fault_plan=None,
    ) -> "CensusStore":
        """Build the columns by streaming the canonical-augmentation tree.

        The sharding scheme is identical to
        :meth:`EquilibriumCensus.build_streamed` (disjoint, jointly
        exhaustive subtrees below level-``shard_level`` roots), but workers
        return column chunks.  The fan-out runs through
        :func:`repro.engine.run_shards`: with ``shard_dir`` every finished
        shard persists as a checksummed, config-fingerprinted
        ``shard_XXXX_of_YYYY.npz`` and an interrupted build **resumes**
        from every shard that verifies (corrupt files are recomputed, a
        shard from a different configuration is rejected), with progress
        and retry tallies in the directory's ``manifest.json``.  Worker
        crashes and per-shard ``timeout`` expiries re-queue only the
        incomplete shards (``max_retries`` pool attempts, then an in-parent
        serial fallback).  The merged store is sorted into canonical census
        order, element-for-element identical to :meth:`build` regardless of
        ``jobs``, retries or resume history.
        """
        _require_numpy()
        if n < 0:
            raise ValueError("n must be non-negative")
        workers = resolve_jobs(jobs)
        if shard_level is None:
            shard_level = max(0, min(6, n - 2))
        shard_level = max(0, min(shard_level, n))
        roots = enumerate_graphs(shard_level)
        chunks = chunk_evenly(roots, max(1, workers * 4))
        tasks = [(chunk, n, include_ucg, batch_size) for chunk in chunks]

        report = run_shards(
            _stream_columns_chunk,
            tasks,
            jobs=jobs,
            shard_dir=shard_dir,
            prefix="shard",
            fingerprint={
                "kind": SCHEMA,
                "format_version": FORMAT_VERSION,
                "n": int(n),
                "include_ucg": bool(include_ucg),
            },
            timeout=timeout,
            max_retries=max_retries,
            progress=progress,
            fault_plan=fault_plan,
        )

        store = cls._from_parts(n, include_ucg, report.parts)
        return store.sort_canonical()

    @classmethod
    def from_census(cls, census) -> "CensusStore":
        """Convert a built :class:`EquilibriumCensus` into columns.

        Distance totals are recomputed (exact integers, so the build path
        does not matter); the deviation data is read straight out of the
        record profiles.
        """
        _require_numpy()
        cols = _ColumnAccumulator(census.include_ucg)
        for record in census.records:
            cols.append(
                record.graph,
                record.bcg_profile.removal_increase,
                record.bcg_profile.addition_saving,
                total_distance(record.graph),
                record.ucg_alpha_set,
            )
        return cls._from_parts(census.n, census.include_ucg, [cols.arrays(census.n)])

    @classmethod
    def _from_parts(cls, n: int, include_ucg: bool, parts: List[dict]) -> "CensusStore":
        np = _require_numpy()
        parts = [part for part in parts if part["num_edges"].shape[0]] or [
            _ColumnAccumulator(include_ucg).arrays(n)
        ]
        rem_values, rem_indptr = concat_csr(
            [(p["rem_values"], p["rem_indptr"]) for p in parts]
        )
        add_lo, add_indptr = concat_csr(
            [(p["add_lo"], p["add_indptr"]) for p in parts]
        )
        add_hi = np.concatenate([p["add_hi"] for p in parts])
        kwargs = {}
        if include_ucg:
            ucg_lo, ucg_indptr = concat_csr(
                [(p["ucg_lo"], p["ucg_indptr"]) for p in parts]
            )
            kwargs = {
                "ucg_lo": ucg_lo,
                "ucg_hi": np.concatenate([p["ucg_hi"] for p in parts]),
                "ucg_indptr": ucg_indptr,
            }
        return cls(
            n=n,
            include_ucg=include_ucg,
            num_edges=np.concatenate([p["num_edges"] for p in parts]),
            dist_total=np.concatenate([p["dist_total"] for p in parts]),
            cert_words=np.concatenate([p["cert_words"] for p in parts]),
            rem_values=rem_values,
            rem_indptr=rem_indptr,
            add_lo=add_lo,
            add_hi=add_hi,
            add_indptr=add_indptr,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #

    def sort_canonical(self) -> "CensusStore":
        """A copy of the store in canonical census order (stable no-op key)."""
        order = canonical_sort_indices(self.num_edges, self.cert_words, self.n)
        return self.permute(order)

    def permute(self, order) -> "CensusStore":
        """A copy with class ``order[i]`` moved to row ``i`` (all columns)."""
        rem_values, rem_indptr = gather_segments(
            self.rem_values, self.rem_indptr, order
        )
        add_lo, add_indptr = gather_segments(self.add_lo, self.add_indptr, order)
        add_hi, _ = gather_segments(self.add_hi, self.add_indptr, order)
        kwargs = {}
        if self.include_ucg:
            ucg_lo, ucg_indptr = gather_segments(
                self.ucg_lo, self.ucg_indptr, order
            )
            ucg_hi, _ = gather_segments(self.ucg_hi, self.ucg_indptr, order)
            kwargs = {
                "ucg_lo": ucg_lo,
                "ucg_hi": ucg_hi,
                "ucg_indptr": ucg_indptr,
            }
        return CensusStore(
            n=self.n,
            include_ucg=self.include_ucg,
            num_edges=self.num_edges[order],
            dist_total=self.dist_total[order],
            cert_words=self.cert_words[order],
            rem_values=rem_values,
            rem_indptr=rem_indptr,
            add_lo=add_lo,
            add_hi=add_hi,
            add_indptr=add_indptr,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Vectorised α-grid queries
    # ------------------------------------------------------------------ #

    def _rem_min_column(self):
        if self._rem_min is None:
            self._rem_min = segment_min(self.rem_values, self.rem_indptr)
        return self._rem_min

    def stable_mask(self, alphas: Sequence[float], game: str = "bcg"):
        """``bool[n_classes, n_alphas]`` equilibrium membership on a grid.

        ``game="bcg"`` gives exact Definition 3 pairwise stability,
        ``game="ucg"`` Nash-supportability — bit-identical per element to
        :meth:`GraphRecord.is_bcg_stable_at` /
        :meth:`GraphRecord.is_ucg_nash_at`.
        """
        game = _check_game(game)
        if game == "bcg":
            return bcg_stable_mask(
                self._rem_min_column(),
                self.add_lo,
                self.add_hi,
                self.add_indptr,
                alphas,
            )
        if not self.include_ucg:
            raise ValueError("census was built without the UCG analysis")
        return ucg_nash_mask(self.ucg_lo, self.ucg_hi, self.ucg_indptr, alphas)

    def equilibrium_counts(self, alphas: Sequence[float], game: str):
        """Number of equilibrium classes at every grid point."""
        return self.stable_mask(alphas, game).sum(axis=0)

    def stability_windows(self):
        """Per-class Lemma 2 ``(α_min, α_max)`` arrays (BCG)."""
        return stability_windows(self._rem_min_column(), self.add_lo, self.add_indptr)

    def _poa_column(self, alpha: float, game: str):
        """Per-class ``ρ(G, α)``, replicating the scalar float expressions.

        ``social_cost`` is ``per_edge·α·m + Σd`` evaluated elementwise with
        the exact operation order of :func:`repro.core.costs.social_cost_bcg`
        (IEEE elementwise ops equal the scalar ops, so each entry is
        bit-identical to :func:`repro.core.anarchy.price_of_anarchy`).
        """
        np = _np
        if self._m64 is None:
            self._m64 = self.num_edges.astype(np.float64)
        per_edge = 2.0 if game == "bcg" else 1.0
        optimum = efficient_social_cost(self.n, alpha, game)
        cost = (per_edge * alpha) * self._m64 + self.dist_total
        if optimum == 0:
            return np.ones_like(cost)
        return cost / optimum

    def grid_aggregates(self, alphas: Sequence[float], game: str) -> Dict[str, list]:
        """Whole-grid Figure 2/3 aggregates in one vectorised pass.

        Returns ``counts``, ``average_poa``, ``worst_poa`` and
        ``average_links`` lists (one entry per grid point), each equal to
        the corresponding :class:`EquilibriumCensus` aggregate — including
        the sequential left-to-right float summation of the record path,
        so averages match to the last bit, and ``nan`` for empty
        equilibrium sets.
        """
        np = _np
        game = _check_game(game)
        mask = self.stable_mask(alphas, game)
        counts: List[int] = []
        average_poa: List[float] = []
        worst_poa: List[float] = []
        average_links: List[float] = []
        for column, alpha in enumerate(alphas):
            selected = mask[:, column]
            count = int(selected.sum())
            counts.append(count)
            if count == 0:
                average_poa.append(float("nan"))
                worst_poa.append(float("nan"))
                average_links.append(float("nan"))
                continue
            poa = self._poa_column(float(alpha), game)[selected]
            total = 0
            for value in poa.tolist():  # class order == record order
                total = total + value
            average_poa.append(total / count)
            worst_poa.append(float(poa.max()))
            links = int(self.num_edges[selected].sum(dtype=np.int64))
            average_links.append(links / count)
        return {
            "counts": counts,
            "average_poa": average_poa,
            "worst_poa": worst_poa,
            "average_links": average_links,
        }

    # ------------------------------------------------------------------ #
    # Scalar compatibility API (mirrors EquilibriumCensus)
    # ------------------------------------------------------------------ #

    def equilibrium_count(self, alpha: float, game: str) -> int:
        """Number of equilibrium topologies at ``alpha``."""
        return int(self.stable_mask([alpha], game).sum())

    def average_price_of_anarchy(self, alpha: float, game: str) -> float:
        """Mean ``ρ(G)`` over the equilibrium topologies at ``alpha``."""
        return self.grid_aggregates([alpha], game)["average_poa"][0]

    def worst_price_of_anarchy(self, alpha: float, game: str) -> float:
        """Maximum ``ρ(G)`` over the equilibrium topologies at ``alpha``."""
        return self.grid_aggregates([alpha], game)["worst_poa"][0]

    def average_num_links(self, alpha: float, game: str) -> float:
        """Mean edge count over the equilibrium topologies at ``alpha``."""
        return self.grid_aggregates([alpha], game)["average_links"][0]

    def edge_count_histogram(self, alpha: float, game: str) -> Dict[int, int]:
        """Histogram of edge counts over the equilibrium topologies."""
        np = _np
        selected = self.stable_mask([alpha], game)[:, 0]
        values, counts = np.unique(self.num_edges[selected], return_counts=True)
        return {int(v): int(c) for v, c in zip(values.tolist(), counts.tolist())}

    def graph_at(self, index: int) -> Graph:
        """Rebuild the canonical representative stored at row ``index``."""
        return certificate_to_graph(self.cert_words[index], self.n)

    def graphs(self) -> List[Graph]:
        """Rebuild every stored representative (canonical census order)."""
        return [self.graph_at(i) for i in range(len(self))]

    def equilibrium_graphs(self, alpha: float, game: str) -> List[Graph]:
        """Equilibrium topologies of either game at ``alpha`` (decoded)."""
        np = _np
        selected = self.stable_mask([alpha], game)[:, 0]
        return [self.graph_at(int(i)) for i in np.nonzero(selected)[0]]

    def stable_graphs_bcg(self, alpha: float) -> List[Graph]:
        """All pairwise-stable topologies at link cost ``alpha``."""
        return self.equilibrium_graphs(alpha, "bcg")

    def nash_graphs_ucg(self, alpha: float) -> List[Graph]:
        """All UCG-Nash topologies at link cost ``alpha``."""
        return self.equilibrium_graphs(alpha, "ucg")

    def __len__(self) -> int:
        return int(self.num_edges.shape[0])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def _columns(self) -> Dict[str, object]:
        columns = {name: getattr(self, name) for name in _DENSE_COLUMNS}
        columns.update({name: getattr(self, name) for name in _BCG_COLUMNS})
        if self.include_ucg:
            columns.update({name: getattr(self, name) for name in _UCG_COLUMNS})
        return columns

    @property
    def nbytes(self) -> int:
        """Resident bytes across every column."""
        return sum(array.nbytes for array in self._columns().values())

    def content_checksum(self) -> str:
        """sha256 over every column's name, dtype, shape and bytes."""
        return content_checksum(self._columns())

    def verify(self) -> Dict[str, object]:
        """Audit the artifact: checksum + structural invariants.

        Returns ``{"ok", "classes", "checksum", "errors"}`` where
        ``checksum`` is ``"ok"`` / ``"mismatch"`` (vs the stamp written by
        :meth:`save`, when the artifact carries one) / ``"absent"``.
        Structural checks: CSR layout of every ragged column, per-class
        probe counts against the edge counts (each class has one removal
        probe per edge and one addition probe per non-edge), edge counts
        within ``[0, C(n,2)]``, finite distance totals, and ordered UCG
        interval endpoints.  A corrupt artifact is caught here, at audit
        time, instead of mid-query.
        """
        np = _require_numpy()
        classes = len(self)
        errors: List[str] = []
        errors += csr_invariant_errors(
            "rem", self.rem_values.shape[0], self.rem_indptr, classes
        )
        errors += csr_invariant_errors(
            "add", self.add_lo.shape[0], self.add_indptr, classes
        )
        if self.add_hi.shape != self.add_lo.shape:
            errors.append("add: add_hi and add_lo lengths differ")
        pairs = self.n * (self.n - 1) // 2
        edges = np.asarray(self.num_edges, dtype=np.int64)
        if classes:
            if bool(np.any(edges < 0)) or bool(np.any(edges > pairs)):
                errors.append(f"num_edges outside [0, {pairs}]")
            elif not errors:
                # One removal probe per edge, one addition probe per non-edge.
                if bool(np.any(np.diff(self.rem_indptr) != edges)):
                    errors.append("rem: per-class probe counts != num_edges")
                if bool(np.any(np.diff(self.add_indptr) != pairs - edges)):
                    errors.append("add: per-class probe counts != non-edges")
            if not bool(np.all(np.isfinite(np.asarray(self.dist_total)))):
                errors.append("dist_total contains non-finite values")
        if self.include_ucg:
            errors += csr_invariant_errors(
                "ucg", self.ucg_lo.shape[0], self.ucg_indptr, classes
            )
            if self.ucg_hi.shape != self.ucg_lo.shape:
                errors.append("ucg: ucg_hi and ucg_lo lengths differ")
            elif self.ucg_lo.shape[0] and bool(
                np.any(np.asarray(self.ucg_lo) > np.asarray(self.ucg_hi))
            ):
                errors.append("ucg: interval lo > hi")
        if self._artifact_checksum is None:
            checksum = "absent"
        elif self.content_checksum() == self._artifact_checksum:
            checksum = "ok"
        else:
            checksum = "mismatch"
            errors.append("content checksum does not match the saved stamp")
        return {
            "ok": not errors,
            "classes": classes,
            "checksum": checksum,
            "errors": errors,
        }

    def summary(self) -> Dict[str, object]:
        """Artifact metadata (used by the CLI and the report renderer)."""
        return {
            "n": self.n,
            "classes": len(self),
            "include_ucg": self.include_ucg,
            "format_version": FORMAT_VERSION,
            "nbytes": self.nbytes,
            "column_bytes": {
                name: array.nbytes for name, array in self._columns().items()
            },
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str, format: Optional[str] = None, compress: bool = False) -> str:
        """Write the store to ``path``; returns the path written.

        ``format="npz"`` (default for ``*.npz`` paths) writes one NumPy
        archive; ``format="dir"`` writes a directory of raw ``.npy``
        columns plus ``meta.json`` — the directory layout can be loaded
        with ``mmap=True`` so multi-hundred-MB artifacts never enter
        resident memory at once.  Both carry the schema tag and
        :data:`FORMAT_VERSION`.
        """
        start = time.perf_counter()
        written = self._save_impl(path, format, compress)
        obs.record_artifact_io(
            "save", "census", written, time.perf_counter() - start
        )
        return written

    def _save_impl(self, path: str, format: Optional[str], compress: bool) -> str:
        np = _require_numpy()
        format = self._resolve_format(path, format)
        if format == "npz":
            if not str(path).endswith(".npz"):
                # np.savez appends the suffix itself; make that explicit so
                # the returned path is the file actually written.
                path = f"{path}.npz"
            payload = dict(self._columns())
            payload["schema"] = np.str_(SCHEMA)
            payload["format_version"] = np.int64(FORMAT_VERSION)
            payload["n"] = np.int64(self.n)
            payload["include_ucg"] = np.bool_(self.include_ucg)
            payload["checksum"] = np.str_(self.content_checksum())
            writer = np.savez_compressed if compress else np.savez
            writer(path, **payload)
            return path
        os.makedirs(path, exist_ok=True)
        columns = self._columns()
        meta = {
            "schema": SCHEMA,
            "format_version": FORMAT_VERSION,
            "n": self.n,
            "include_ucg": self.include_ucg,
            "columns": sorted(columns),
            "checksum": self.content_checksum(),
        }
        with open(os.path.join(path, "meta.json"), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, array in columns.items():
            np.save(os.path.join(path, f"{name}.npy"), array)
        return path

    @staticmethod
    def _resolve_format(path: str, format: Optional[str]) -> str:
        if format is None:
            format = "npz" if str(path).endswith(".npz") else "dir"
        if format not in ("npz", "dir"):
            raise ValueError("format must be 'npz' or 'dir'")
        return format

    @classmethod
    def load(cls, path: str, mmap: bool = False) -> "CensusStore":
        """Load a store written by :meth:`save`.

        ``mmap=True`` memory-maps the columns and is only supported for the
        directory format (zip archives cannot be mapped page-aligned).
        """
        start = time.perf_counter()
        store = cls._load_impl(path, mmap)
        obs.record_artifact_io(
            "load", "census", path, time.perf_counter() - start
        )
        return store

    @classmethod
    def _load_impl(cls, path: str, mmap: bool) -> "CensusStore":
        np = _require_numpy()
        if os.path.isdir(path):
            with open(os.path.join(path, "meta.json")) as handle:
                meta = json.load(handle)
            cls._check_meta(meta.get("schema"), meta.get("format_version"), path)
            mmap_mode = "r" if mmap else None
            columns = {
                name: np.load(
                    os.path.join(path, f"{name}.npy"), mmap_mode=mmap_mode
                )
                for name in meta["columns"]
            }
            store = cls(n=meta["n"], include_ucg=meta["include_ucg"], **columns)
            store._artifact_checksum = meta.get("checksum")
            return store
        if mmap:
            raise ValueError(
                "mmap loading requires the directory format; save with "
                "format='dir' for memory-mappable artifacts"
            )
        with np.load(path, allow_pickle=False) as data:
            schema = str(data["schema"]) if "schema" in data else None
            version = (
                int(data["format_version"]) if "format_version" in data else None
            )
            cls._check_meta(schema, version, path)
            include_ucg = bool(data["include_ucg"])
            columns = {name: data[name] for name in _DENSE_COLUMNS + _BCG_COLUMNS}
            if include_ucg:
                columns.update({name: data[name] for name in _UCG_COLUMNS})
            store = cls(n=int(data["n"]), include_ucg=include_ucg, **columns)
            if "checksum" in data:
                store._artifact_checksum = str(data["checksum"])
            return store

    @staticmethod
    def _check_meta(schema: Optional[str], version: Optional[int], path: str) -> None:
        if schema != SCHEMA:
            raise ValueError(f"{path!r} is not a census-store artifact")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path!r} has store format version {version}; this build "
                f"reads version {FORMAT_VERSION}"
            )


# --------------------------------------------------------------------------- #
# Column assembly (shared by every build path and the pool workers)
# --------------------------------------------------------------------------- #


class _ColumnAccumulator:
    """Builds the per-class columns of one chunk in plain Python lists.

    The float32 value columns are exact: every BCG deviation payoff is an
    integer-valued float (or ``±inf``) far below 2**24 (distance sums on
    ``n <= 63`` vertices), so narrowing and widening round-trips bit-exactly.
    The UCG endpoints come from divisions and stay float64.
    """

    def __init__(self, include_ucg: bool) -> None:
        self.include_ucg = include_ucg
        self.certs: List[int] = []
        self.num_edges: List[int] = []
        self.dist_total: List[float] = []
        self.rem_values: List[float] = []
        self.rem_counts: List[int] = []
        self.add_lo: List[float] = []
        self.add_hi: List[float] = []
        self.add_counts: List[int] = []
        self.ucg_lo: List[float] = []
        self.ucg_hi: List[float] = []
        self.ucg_counts: List[int] = []

    def append(
        self,
        graph: Graph,
        removal: Dict,
        addition: Dict,
        total: float,
        ucg_set: Optional[AlphaIntervalSet],
    ) -> None:
        self.certs.append(graph.adjacency_bitstring())
        self.num_edges.append(graph.num_edges)
        self.dist_total.append(float(total))
        edges = graph.sorted_edges()
        for (u, v) in edges:
            self.rem_values.append(
                min(removal[((u, v), u)], removal[((u, v), v)])
            )
        self.rem_counts.append(len(edges))
        non_edges = graph.non_edges()
        for (u, v) in non_edges:
            save_u = addition[((u, v), u)]
            save_v = addition[((u, v), v)]
            if save_u <= save_v:
                self.add_lo.append(save_u)
                self.add_hi.append(save_v)
            else:
                self.add_lo.append(save_v)
                self.add_hi.append(save_u)
        self.add_counts.append(len(non_edges))
        if self.include_ucg:
            intervals = ucg_set.intervals
            for interval in intervals:
                self.ucg_lo.append(interval.lo)
                self.ucg_hi.append(interval.hi)
            self.ucg_counts.append(len(intervals))

    def arrays(self, n: int) -> dict:
        np = _require_numpy()

        def indptr(counts: List[int]):
            out = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(np.asarray(counts, dtype=np.int64), out=out[1:])
            return out

        part = {
            "num_edges": np.asarray(self.num_edges, dtype=np.int32),
            "dist_total": np.asarray(self.dist_total, dtype=np.float64),
            "cert_words": pack_certificates(self.certs, n),
            "rem_values": np.asarray(self.rem_values, dtype=np.float32),
            "rem_indptr": indptr(self.rem_counts),
            "add_lo": np.asarray(self.add_lo, dtype=np.float32),
            "add_hi": np.asarray(self.add_hi, dtype=np.float32),
            "add_indptr": indptr(self.add_counts),
        }
        if self.include_ucg:
            part["ucg_lo"] = np.asarray(self.ucg_lo, dtype=np.float64)
            part["ucg_hi"] = np.asarray(self.ucg_hi, dtype=np.float64)
            part["ucg_indptr"] = indptr(self.ucg_counts)
        return part


def bcg_alpha_columns(profiles: Sequence[PairwiseStabilityProfile]):
    """BCG α-decision columns for an ad-hoc batch of stability profiles.

    Returns ``(rem_min, add_lo, add_hi, add_indptr)`` ready for
    :func:`repro.engine.columnar.bcg_stable_mask` /
    :func:`~repro.engine.columnar.stability_windows`.  Unlike the store,
    the graphs may have heterogeneous vertex counts (the masks never look
    at ``n``) — this is how the Figure 1 experiment pushes its six named
    graphs through the same vectorised kernels as the censuses.
    """
    np = _require_numpy()
    rem_min: List[float] = []
    add_lo: List[float] = []
    add_hi: List[float] = []
    indptr: List[int] = [0]
    for profile in profiles:
        removal = profile.removal_increase
        rem_min.append(min(removal.values()) if removal else float("inf"))
        for (u, v) in profile.graph.non_edges():
            save_u = profile.addition_saving[((u, v), u)]
            save_v = profile.addition_saving[((u, v), v)]
            add_lo.append(min(save_u, save_v))
            add_hi.append(max(save_u, save_v))
        indptr.append(len(add_lo))
    return (
        np.asarray(rem_min, dtype=np.float64),
        np.asarray(add_lo, dtype=np.float64),
        np.asarray(add_hi, dtype=np.float64),
        np.asarray(indptr, dtype=np.int64),
    )


# --------------------------------------------------------------------------- #
# Pool workers (module-level for pickling)
# --------------------------------------------------------------------------- #


def _analyse_columns(graphs: List[Graph], n: int, include_ucg: bool, oracle) -> dict:
    """Column chunk for a batch of graphs (same analysis as ``_make_records``)."""
    results = batch_stability_deltas(graphs, oracle=oracle, return_totals=True)
    cols = _ColumnAccumulator(include_ucg)
    ucg_sets = (
        ucg_alpha_sets(graphs, oracle=oracle) if include_ucg else [None] * len(graphs)
    )
    for graph, ((removal, addition), total), ucg_set in zip(
        graphs, results, ucg_sets
    ):
        cols.append(graph, removal, addition, total, ucg_set)
    return cols.arrays(n)


def _columns_chunk(task: Tuple[List[Graph], int, bool]) -> dict:
    graphs, n, include_ucg = task
    return _analyse_columns(graphs, n, include_ucg, get_default_oracle())


def _stream_columns_chunk(task: Tuple[List[Graph], int, bool, int]) -> dict:
    """Generate-and-analyse one generation-tree shard into columns."""
    roots, n, include_ucg, batch_size = task
    oracle = get_default_oracle()
    cols = _ColumnAccumulator(include_ucg)
    pending: List[Graph] = []

    def flush() -> None:
        results = batch_stability_deltas(pending, oracle=oracle, return_totals=True)
        # Graphs arrive canonical with their automorphism record memoised,
        # so the batched UCG engine orbit-prunes automatically.
        ucg_sets = (
            ucg_alpha_sets(pending, oracle=oracle)
            if include_ucg
            else [None] * len(pending)
        )
        for graph, ((removal, addition), total), ucg_set in zip(
            pending, results, ucg_sets
        ):
            cols.append(graph, removal, addition, total, ucg_set)
            clear_canonical_record(graph)
        obs.counter(
            "repro_stream_classes_total",
            "Graph classes analysed by streamed store builds",
            store="census",
        ).inc(len(pending))
        pending.clear()

    for root in roots:
        for graph in iter_graphs_from(root, n):
            if not is_connected(graph):
                continue
            pending.append(canonical_graph(graph))
            if len(pending) >= batch_size:
                flush()
    if pending:
        flush()
    return cols.arrays(n)


# --------------------------------------------------------------------------- #
# Process-wide store cache (mirrors cached_census)
# --------------------------------------------------------------------------- #


_STORE_CACHE: "OrderedDict[tuple, CensusStore]" = OrderedDict()

#: One re-entrant lock guards every mutation of :data:`_STORE_CACHE` — the
#: cache is shared by :func:`cached_store`, :func:`cached_delta_store` and
#: :func:`cached_weighted_store`, and the service layer calls all three from
#: concurrent request threads.  The lock is held across a whole miss
#: (including the build/load) so the hit/miss/eviction counters stay exact
#: and two threads never build the same artifact twice; artifact loads are
#: milliseconds, and the expensive kernel queries run outside the lock.
_STORE_CACHE_LOCK = threading.RLock()

#: Upper bound on cached stores.  Small on purpose: an n = 8 store is a few
#: MB resident but an n = 9 store is tens of MB, and a long-lived process
#: cycling through artifacts (the ensemble/experiment runners) must not
#: accumulate every store it ever touched.
STORE_CACHE_MAX = 8


def _artifact_stamp(path: str) -> tuple:
    """``(mtime_ns, size)`` of an artifact, so rewrites miss the cache.

    Load-keyed cache entries are not determined by the path alone — a
    long-lived process may regenerate an artifact in place and must not
    keep being served the old columns.  The directory format aggregates
    over every file in the directory (newest mtime, total size), so
    rewriting any single column in place also invalidates the entry.
    """
    if os.path.isdir(path):
        # Per-file stamps, not an aggregate: a same-clock-tick in-place
        # rewrite of one column leaves the directory-wide max mtime (and
        # total size) unchanged but never that file's own pre-write mtime.
        return tuple(
            (name,) + _artifact_stamp(os.path.join(path, name))
            for name in sorted(os.listdir(path))
        )
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


def _cache_store(key: tuple, store: CensusStore) -> CensusStore:
    """Insert (or touch) one cache entry, evicting least-recently-used.

    Callers must hold :data:`_STORE_CACHE_LOCK`.
    """
    _STORE_CACHE[key] = store
    _STORE_CACHE.move_to_end(key)
    while len(_STORE_CACHE) > max(1, STORE_CACHE_MAX):
        _STORE_CACHE.popitem(last=False)
        obs.counter(
            "repro_cache_evictions_total", "LRU evictions from the store cache",
            cache="store-lru",
        ).inc()
    return store


def _count_cache_lookup(cache: str, hit: bool) -> None:
    """One hit-or-miss tick for a store-cache lookup."""
    obs.counter(
        "repro_cache_hits_total" if hit else "repro_cache_misses_total",
        "Store-cache lookups served from memory"
        if hit
        else "Store-cache lookups that had to build or load",
        cache=cache,
    ).inc()


def cached_store(
    n: Optional[int] = None,
    include_ucg: bool = True,
    jobs: Optional[int] = None,
    path: Optional[str] = None,
    mmap: bool = False,
) -> CensusStore:
    """Build, load or fetch the columnar store (bounded LRU cache).

    With ``n`` the store is built in process (or converted from a record
    census already sitting in the census cache —
    :meth:`CensusStore.from_census` skips the whole deviation + UCG
    orientation pass).  With ``path`` it is loaded from an on-disk
    artifact instead, optionally memory-mapped.

    Every option that changes what the returned *object* is — ``n`` and
    ``include_ucg`` for builds; the absolute path, ``mmap`` and the file's
    modification stamp for loads — is part of the cache key, so a resident
    store can never be handed out where a mapped view was requested (or
    vice versa), and an artifact rewritten in place on disk misses the
    cache instead of serving its old columns.  ``jobs`` only
    affects how a build miss is computed; the contents are identical for
    any value and it is therefore *not* part of the key.  The cache keeps
    at most :data:`STORE_CACHE_MAX` stores, evicting least-recently-used.
    """
    if (n is None) == (path is None):
        raise ValueError("exactly one of n and path is required")
    if path is not None:
        key = ("load", os.path.abspath(path), bool(mmap), _artifact_stamp(path))
        with _STORE_CACHE_LOCK:
            store = _STORE_CACHE.get(key)
            _count_cache_lookup("census-store", hit=store is not None)
            if store is None:
                store = CensusStore.load(path, mmap=mmap)
            return _cache_store(key, store)

    from .census import _CENSUS_CACHE

    key = ("build", int(n), bool(include_ucg))
    with _STORE_CACHE_LOCK:
        store = _STORE_CACHE.get(key)
        _count_cache_lookup("census-store", hit=store is not None)
        if store is None:
            cached = _CENSUS_CACHE.get((int(n), bool(include_ucg)))
            if cached is not None:
                store = CensusStore.from_census(cached)
            else:
                store = CensusStore.build(n, include_ucg=include_ucg, jobs=jobs)
        return _cache_store(key, store)


def clear_store_cache() -> None:
    """Drop the store cache (used by cold-start benchmarks and tests)."""
    with _STORE_CACHE_LOCK:
        _STORE_CACHE.clear()


# Pre-register the cache counter families at import so a fresh exposition
# always carries them — a build-only run never performs a cache lookup,
# and a dashboard watching hit rate needs the zero series to exist.
if obs.metrics_enabled():
    obs.counter(
        "repro_cache_hits_total",
        "Store-cache lookups served from memory",
        cache="census-store",
    )
    obs.counter(
        "repro_cache_misses_total",
        "Store-cache lookups that had to build or load",
        cache="census-store",
    )
    obs.counter(
        "repro_cache_evictions_total",
        "LRU evictions from the store cache",
        cache="store-lru",
    )
