"""Shared Δdist artifacts: model-independent probe columns, built once per n.

A weighted sweep pairs every single-link deviation payoff with a coefficient
``w(payer, other)`` — but the payoffs themselves depend only on the topology
class list.  The PR-5 ensemble runner nevertheless re-ran the boolean-matmul
deviation analysis once *per draw*, making a 1000-draw ensemble cost 1000
identical delta passes.  :class:`DeltaStore` is the amortisation layer: the
per-probe Δdist columns **plus the probe endpoint indices**, persisted once
per ``n`` and shared by every cost model, draw and ensemble that follows.

* **columns** — per class: a packed upper-triangle certificate, the edge
  count, the total ordered-pair distance sum, and the ragged CSR probe
  columns of :func:`repro.engine.batch.batch_delta_columns`: removal
  ``(Δ, payer, other)`` triples (two per edge, ``sorted_edges`` order) and
  per-non-edge ``(save_u, save_v, u, v)`` 4-tuples (``non_edges`` order).
  The endpoint indices are what make the artifact model-independent — any
  draw's coefficient columns are one dense gather
  ``W[rem_pay, rem_other]`` away (see
  :func:`repro.engine.columnar.stacked_weight_columns`);
* **query = the stacked kernels** — K draws are answered at once by
  :meth:`stable_counts_multi` / :meth:`stability_windows_multi`, each row
  bit-identical to the per-draw weighted kernels over that draw's own
  :class:`~repro.analysis.weighted_store.WeightedStore`;
* **same persistence story as the census stores** — one versioned ``.npz``
  or an mmap-able directory of ``.npy`` columns (schema tag,
  :data:`FORMAT_VERSION`, ``n``), shard-resumable :meth:`build_streamed`,
  and a process-wide LRU (:func:`cached_delta_store`) sharing the
  :data:`~repro.analysis.store.STORE_CACHE_MAX` budget with
  :func:`~repro.analysis.store.cached_store`.

:meth:`WeightedStore.from_delta <repro.analysis.weighted_store.WeightedStore.from_delta>`
turns (DeltaStore, cost model) back into a full per-draw artifact —
float-for-float identical to building that store from scratch — so the
delta artifact composes with every existing kernel, file format and test.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy backs every column; the store refuses to build without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..engine import (
    chunk_evenly,
    content_checksum,
    parallel_map,
    resolve_jobs,
    run_shards,
)
from ..engine.batch import batch_delta_columns
from ..engine.oracle import DistanceOracle
from ..engine.columnar import (
    canonical_sort_indices,
    certificate_to_graph,
    concat_csr,
    csr_invariant_errors,
    gather_segments,
    pack_certificates,
    stacked_weight_columns,
    weighted_bcg_stable_mask_multi,
    weighted_stability_windows_multi,
)
from ..graphs import (
    Graph,
    canonical_graph,
    enumerate_connected_graphs,
    enumerate_graphs,
    is_connected,
    iter_graphs_from,
)
from ..graphs.isomorphism import clear_canonical_record

#: On-disk format version; bump on any incompatible schema change.
FORMAT_VERSION = 1

#: Schema tag written into every artifact (guards against loading foreign files).
SCHEMA = "repro-delta-store"

#: Dense per-class columns.
_DENSE_COLUMNS = ("num_edges", "dist_total", "cert_words")
#: Ragged probe columns in the batch_delta_columns CSR layout.
_PROBE_COLUMNS = (
    "rem_delta", "rem_pay", "rem_other", "rem_indptr",
    "add_s_u", "add_s_v", "add_u", "add_v", "add_indptr",
)


def delta_store_available() -> bool:
    """Whether the delta store can be used (NumPy importable)."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "DeltaStore requires NumPy; use the per-graph "
            "WeightedStabilityProfile path instead"
        )
    return _np


class DeltaStore:
    """Model-independent Δdist probe columns for every connected class on n.

    Instances are produced by :meth:`build`, :meth:`build_streamed` or
    :meth:`load`; the constructor just wires up pre-validated columns.
    Classes are kept in canonical census order, so row ``i`` here, row ``i``
    of :class:`~repro.analysis.store.CensusStore` and row ``i`` of any
    :class:`~repro.analysis.weighted_store.WeightedStore` on the same ``n``
    describe the same isomorphism class.
    """

    def __init__(
        self,
        n: int,
        num_edges,
        dist_total,
        cert_words,
        rem_delta,
        rem_pay,
        rem_other,
        rem_indptr,
        add_s_u,
        add_s_v,
        add_u,
        add_v,
        add_indptr,
    ) -> None:
        _require_numpy()
        self.n = int(n)
        self.num_edges = num_edges
        self.dist_total = dist_total
        self.cert_words = cert_words
        self.rem_delta = rem_delta
        self.rem_pay = rem_pay
        self.rem_other = rem_other
        self.rem_indptr = rem_indptr
        self.add_s_u = add_s_u
        self.add_s_v = add_s_v
        self.add_u = add_u
        self.add_v = add_v
        self.add_indptr = add_indptr
        self._artifact_checksum = None  # checksum stamped on the loaded artifact

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, n: int, jobs: Optional[int] = None) -> "DeltaStore":
        """Delta columns for every connected class on ``n`` vertices.

        The class list, order and deviation analysis are exactly those of
        :meth:`WeightedStore.build` — minus the coefficients, which is the
        point: one build serves every cost model on ``n`` players.
        """
        _require_numpy()
        graphs = enumerate_connected_graphs(n)
        workers = resolve_jobs(jobs)
        chunks = chunk_evenly(graphs, max(1, workers * 4))
        tasks = [(chunk, n) for chunk in chunks]
        parts = parallel_map(_delta_columns_chunk, tasks, jobs=jobs)
        # enumerate_connected_graphs is already canonically sorted and the
        # chunks preserve order, so no global sort is needed here.
        return cls._from_parts(n, parts)

    @classmethod
    def build_streamed(
        cls,
        n: int,
        jobs: Optional[int] = None,
        shard_level: Optional[int] = None,
        batch_size: int = 512,
        shard_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        progress=None,
        fault_plan=None,
    ) -> "DeltaStore":
        """Build the columns by streaming the canonical-augmentation tree.

        Same sharding scheme as the census/weighted stores (disjoint,
        jointly exhaustive subtrees below level-``shard_level`` roots); the
        fan-out runs through :func:`repro.engine.run_shards`, so with
        ``shard_dir`` finished shards persist checksummed and an
        interrupted build resumes from every shard that verifies (corrupt
        files recomputed, wrong-config shards rejected), with progress and
        retry tallies in the directory's ``manifest.json``.  Shards are
        fingerprinted on ``n`` only — delta columns are model-independent,
        so one shard directory serves every cost model.  The merged store
        is sorted into canonical census order, element-for-element
        identical to :meth:`build`.
        """
        _require_numpy()
        if n < 0:
            raise ValueError("n must be non-negative")
        workers = resolve_jobs(jobs)
        if shard_level is None:
            shard_level = max(0, min(6, n - 2))
        shard_level = max(0, min(shard_level, n))
        roots = enumerate_graphs(shard_level)
        chunks = chunk_evenly(roots, max(1, workers * 4))
        tasks = [(chunk, n, batch_size) for chunk in chunks]

        report = run_shards(
            _stream_delta_chunk,
            tasks,
            jobs=jobs,
            shard_dir=shard_dir,
            prefix="dshard",
            fingerprint={
                "kind": SCHEMA,
                "format_version": FORMAT_VERSION,
                "n": int(n),
            },
            timeout=timeout,
            max_retries=max_retries,
            progress=progress,
            fault_plan=fault_plan,
        )

        store = cls._from_parts(n, report.parts)
        return store.sort_canonical()

    @classmethod
    def _from_parts(cls, n: int, parts: List[dict]) -> "DeltaStore":
        return cls(n=n, **_merge_parts(parts, n))

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #

    def sort_canonical(self) -> "DeltaStore":
        """A copy of the store in canonical census order (stable no-op key)."""
        order = canonical_sort_indices(self.num_edges, self.cert_words, self.n)
        return self.permute(order)

    def permute(self, order) -> "DeltaStore":
        """A copy with class ``order[i]`` moved to row ``i`` (all columns)."""
        rem_delta, rem_indptr = gather_segments(
            self.rem_delta, self.rem_indptr, order
        )
        rem_pay, _ = gather_segments(self.rem_pay, self.rem_indptr, order)
        rem_other, _ = gather_segments(self.rem_other, self.rem_indptr, order)
        add_s_u, add_indptr = gather_segments(
            self.add_s_u, self.add_indptr, order
        )
        add_s_v, _ = gather_segments(self.add_s_v, self.add_indptr, order)
        add_u, _ = gather_segments(self.add_u, self.add_indptr, order)
        add_v, _ = gather_segments(self.add_v, self.add_indptr, order)
        return DeltaStore(
            n=self.n,
            num_edges=self.num_edges[order],
            dist_total=self.dist_total[order],
            cert_words=self.cert_words[order],
            rem_delta=rem_delta,
            rem_pay=rem_pay,
            rem_other=rem_other,
            rem_indptr=rem_indptr,
            add_s_u=add_s_u,
            add_s_v=add_s_v,
            add_u=add_u,
            add_v=add_v,
            add_indptr=add_indptr,
        )

    # ------------------------------------------------------------------ #
    # Stacked multi-draw queries
    # ------------------------------------------------------------------ #

    def stacked_weights(self, weight_matrices) -> Tuple:
        """``(rem_w, add_w_u, add_w_v)`` ``(K, P)`` stacks for K matrices."""
        return stacked_weight_columns(
            weight_matrices, self.rem_pay, self.rem_other, self.add_u, self.add_v
        )

    def stable_mask_multi(self, weight_matrices, ts: Sequence[float]):
        """``bool[K, n_classes, n_ts]`` stability for K draws at once.

        Row ``k`` is bit-identical to
        ``WeightedStore.from_delta(self, model_k).stable_mask(ts)``.
        """
        rem_w, add_w_u, add_w_v = self.stacked_weights(weight_matrices)
        return weighted_bcg_stable_mask_multi(
            self.rem_delta, self.rem_indptr,
            self.add_s_u, self.add_s_v, self.add_indptr,
            rem_w, add_w_u, add_w_v, ts,
        )

    def stable_counts_multi(self, weight_matrices, ts: Sequence[float]):
        """``int64[K, n_ts]`` stable-class counts for K draws at once."""
        np = _require_numpy()
        return self.stable_mask_multi(weight_matrices, ts).sum(
            axis=1, dtype=np.int64
        )

    def stability_windows_multi(self, weight_matrices):
        """``(t_min[K, C], t_max[K, C])`` weighted windows for K draws."""
        rem_w, add_w_u, add_w_v = self.stacked_weights(weight_matrices)
        return weighted_stability_windows_multi(
            self.rem_delta, self.rem_indptr,
            self.add_s_u, self.add_s_v, self.add_indptr,
            rem_w, add_w_u, add_w_v,
        )

    # ------------------------------------------------------------------ #
    # Introspection and decoding
    # ------------------------------------------------------------------ #

    def graph_at(self, index: int) -> Graph:
        """Rebuild the canonical representative stored at row ``index``."""
        return certificate_to_graph(self.cert_words[index], self.n)

    def __len__(self) -> int:
        return int(self.num_edges.shape[0])

    def _columns(self) -> Dict[str, object]:
        return {
            name: getattr(self, name)
            for name in _DENSE_COLUMNS + _PROBE_COLUMNS
        }

    @property
    def nbytes(self) -> int:
        """Resident bytes across every column."""
        return sum(array.nbytes for array in self._columns().values())

    def content_checksum(self) -> str:
        """sha256 over every column's name, dtype, shape and bytes."""
        return content_checksum(self._columns())

    def verify(self) -> Dict[str, object]:
        """Audit the artifact: checksum + structural invariants.

        Returns ``{"ok", "classes", "checksum", "errors"}`` (see
        :meth:`CensusStore.verify <repro.analysis.store.CensusStore.verify>`
        for the contract).  Structural checks: CSR layout of the probe
        columns, per-class probe counts against the edge counts (two
        ordered removal probes per edge, one addition probe per non-edge),
        endpoint indices within ``[0, n)``, and finite distance totals.
        """
        np = _require_numpy()
        classes = len(self)
        errors: List[str] = []
        errors += csr_invariant_errors(
            "rem", self.rem_delta.shape[0], self.rem_indptr, classes
        )
        errors += csr_invariant_errors(
            "add", self.add_s_u.shape[0], self.add_indptr, classes
        )
        for name in ("rem_pay", "rem_other"):
            if getattr(self, name).shape != self.rem_delta.shape:
                errors.append(f"rem: {name} and rem_delta lengths differ")
        for name in ("add_s_v", "add_u", "add_v"):
            if getattr(self, name).shape != self.add_s_u.shape:
                errors.append(f"add: {name} and add_s_u lengths differ")
        pairs = self.n * (self.n - 1) // 2
        edges = np.asarray(self.num_edges, dtype=np.int64)
        if classes:
            if bool(np.any(edges < 0)) or bool(np.any(edges > pairs)):
                errors.append(f"num_edges outside [0, {pairs}]")
            elif not errors:
                # Two ordered removal probes per edge (one per endpoint),
                # one addition probe per unordered non-edge.
                if bool(np.any(np.diff(self.rem_indptr) != 2 * edges)):
                    errors.append("rem: per-class probe counts != 2*num_edges")
                if bool(np.any(np.diff(self.add_indptr) != pairs - edges)):
                    errors.append("add: per-class probe counts != non-edges")
            if not bool(np.all(np.isfinite(np.asarray(self.dist_total)))):
                errors.append("dist_total contains non-finite values")
        for name in ("rem_pay", "rem_other", "add_u", "add_v"):
            indices = np.asarray(getattr(self, name))
            if indices.shape[0] and (
                bool(np.any(indices < 0)) or bool(np.any(indices >= self.n))
            ):
                errors.append(f"{name}: endpoint indices outside [0, {self.n})")
        if self._artifact_checksum is None:
            checksum = "absent"
        elif self.content_checksum() == self._artifact_checksum:
            checksum = "ok"
        else:
            checksum = "mismatch"
            errors.append("content checksum does not match the saved stamp")
        return {
            "ok": not errors,
            "classes": classes,
            "checksum": checksum,
            "errors": errors,
        }

    def summary(self) -> Dict[str, object]:
        """Artifact metadata (used by the CLI and the smoke scripts)."""
        return {
            "n": self.n,
            "classes": len(self),
            "removal_probes": int(self.rem_indptr[-1]),
            "addition_probes": int(self.add_indptr[-1]),
            "format_version": FORMAT_VERSION,
            "nbytes": self.nbytes,
            "column_bytes": {
                name: array.nbytes for name, array in self._columns().items()
            },
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(
        self, path: str, format: Optional[str] = None, compress: bool = False
    ) -> str:
        """Write the artifact to ``path``; returns the path written.

        ``format="npz"`` (default for ``*.npz`` paths) writes one NumPy
        archive; ``format="dir"`` writes a directory of raw ``.npy``
        columns plus ``meta.json`` — loadable with ``mmap=True`` so pool
        workers can share one resident copy of the columns.
        """
        start = time.perf_counter()
        written = self._save_impl(path, format, compress)
        obs.record_artifact_io(
            "save", "delta", written, time.perf_counter() - start
        )
        return written

    def _save_impl(
        self, path: str, format: Optional[str], compress: bool
    ) -> str:
        np = _require_numpy()
        if format is None:
            format = "npz" if str(path).endswith(".npz") else "dir"
        if format not in ("npz", "dir"):
            raise ValueError("format must be 'npz' or 'dir'")
        if format == "npz":
            if not str(path).endswith(".npz"):
                # np.savez appends the suffix itself; make that explicit so
                # the returned path is the file actually written.
                path = f"{path}.npz"
            payload = dict(self._columns())
            payload["schema"] = np.str_(SCHEMA)
            payload["format_version"] = np.int64(FORMAT_VERSION)
            payload["n"] = np.int64(self.n)
            payload["checksum"] = np.str_(self.content_checksum())
            writer = np.savez_compressed if compress else np.savez
            writer(path, **payload)
            return path
        os.makedirs(path, exist_ok=True)
        columns = self._columns()
        meta = {
            "schema": SCHEMA,
            "format_version": FORMAT_VERSION,
            "n": self.n,
            "columns": sorted(columns),
            "checksum": self.content_checksum(),
        }
        with open(os.path.join(path, "meta.json"), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, array in columns.items():
            np.save(os.path.join(path, f"{name}.npy"), array)
        return path

    @classmethod
    def load(cls, path: str, mmap: bool = False) -> "DeltaStore":
        """Load an artifact written by :meth:`save`.

        ``mmap=True`` memory-maps the columns and is only supported for the
        directory format (zip archives cannot be mapped page-aligned).
        """
        start = time.perf_counter()
        store = cls._load_impl(path, mmap)
        obs.record_artifact_io(
            "load", "delta", path, time.perf_counter() - start
        )
        return store

    @classmethod
    def _load_impl(cls, path: str, mmap: bool) -> "DeltaStore":
        np = _require_numpy()
        if os.path.isdir(path):
            with open(os.path.join(path, "meta.json")) as handle:
                meta = json.load(handle)
            cls._check_meta(meta.get("schema"), meta.get("format_version"), path)
            mmap_mode = "r" if mmap else None
            columns = {
                name: np.load(
                    os.path.join(path, f"{name}.npy"), mmap_mode=mmap_mode
                )
                for name in meta["columns"]
            }
            store = cls(n=meta["n"], **columns)
            store._artifact_checksum = meta.get("checksum")
            return store
        if mmap:
            raise ValueError(
                "mmap loading requires the directory format; save with "
                "format='dir' for memory-mappable artifacts"
            )
        with np.load(path, allow_pickle=False) as data:
            schema = str(data["schema"]) if "schema" in data else None
            version = (
                int(data["format_version"]) if "format_version" in data else None
            )
            cls._check_meta(schema, version, path)
            columns = {
                name: data[name] for name in _DENSE_COLUMNS + _PROBE_COLUMNS
            }
            store = cls(n=int(data["n"]), **columns)
            if "checksum" in data:
                store._artifact_checksum = str(data["checksum"])
            return store

    @staticmethod
    def _check_meta(schema: Optional[str], version: Optional[int], path: str) -> None:
        if schema != SCHEMA:
            raise ValueError(f"{path!r} is not a delta-store artifact")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path!r} has delta-store format version {version}; "
                f"this build reads version {FORMAT_VERSION}"
            )


# --------------------------------------------------------------------------- #
# Column assembly + pool workers (module-level for pickling)
# --------------------------------------------------------------------------- #


def _merge_parts(parts: List[dict], n: int) -> dict:
    """Concatenate column-chunk dicts (CSR offsets rebased) into one dict."""
    np = _require_numpy()
    parts = [part for part in parts if part["num_edges"].shape[0]] or [
        _empty_part(n)
    ]
    rem_delta, rem_indptr = concat_csr(
        [(p["rem_delta"], p["rem_indptr"]) for p in parts]
    )
    add_s_u, add_indptr = concat_csr(
        [(p["add_s_u"], p["add_indptr"]) for p in parts]
    )
    merged = {
        name: np.concatenate([p[name] for p in parts])
        for name in (
            "num_edges", "dist_total", "cert_words",
            "rem_pay", "rem_other", "add_s_v", "add_u", "add_v",
        )
    }
    merged.update(
        rem_delta=rem_delta,
        rem_indptr=rem_indptr,
        add_s_u=add_s_u,
        add_indptr=add_indptr,
    )
    return merged


def _empty_part(n: int) -> dict:
    np = _require_numpy()
    return {
        "num_edges": np.zeros(0, dtype=np.int32),
        "dist_total": np.zeros(0, dtype=np.float64),
        "cert_words": pack_certificates([], n),
        "rem_delta": np.zeros(0, dtype=np.float32),
        "rem_pay": np.zeros(0, dtype=np.int32),
        "rem_other": np.zeros(0, dtype=np.int32),
        "rem_indptr": np.zeros(1, dtype=np.int64),
        "add_s_u": np.zeros(0, dtype=np.float32),
        "add_s_v": np.zeros(0, dtype=np.float32),
        "add_u": np.zeros(0, dtype=np.int32),
        "add_v": np.zeros(0, dtype=np.int32),
        "add_indptr": np.zeros(1, dtype=np.int64),
    }


def _delta_part(
    graphs: List[Graph], n: int, oracle: Optional[DistanceOracle]
) -> dict:
    """One column chunk: delta probe columns + certificates for ``graphs``."""
    if not graphs:
        return _empty_part(n)
    part = batch_delta_columns(graphs, oracle=oracle)
    part["cert_words"] = pack_certificates(
        [graph.adjacency_bitstring() for graph in graphs], n
    )
    return part


def _delta_columns_chunk(task: Tuple) -> dict:
    graphs, n = task
    return _delta_part(graphs, n, DistanceOracle())


def _stream_delta_chunk(task: Tuple) -> dict:
    """Generate-and-probe one generation-tree shard into delta columns."""
    roots, n, batch_size = task
    oracle = DistanceOracle()
    parts: List[dict] = []
    pending: List[Graph] = []

    def flush() -> None:
        parts.append(_delta_part(pending, n, oracle))
        for graph in pending:
            clear_canonical_record(graph)
        obs.counter(
            "repro_stream_classes_total",
            "Graph classes analysed by streamed store builds",
            store="delta",
        ).inc(len(pending))
        pending.clear()

    for root in roots:
        for graph in iter_graphs_from(root, n):
            if not is_connected(graph):
                continue
            pending.append(canonical_graph(graph))
            if len(pending) >= batch_size:
                flush()
    if pending:
        flush()
    return _merge_parts(parts, n)


# --------------------------------------------------------------------------- #
# Process-wide delta-store cache (shares the census-store LRU budget)
# --------------------------------------------------------------------------- #


def cached_delta_store(
    n: Optional[int] = None,
    jobs: Optional[int] = None,
    path: Optional[str] = None,
    mmap: bool = False,
) -> DeltaStore:
    """Build, load or fetch a delta store through the shared store LRU.

    The :func:`~repro.analysis.store.cached_store` pattern applied to delta
    artifacts: with ``n`` the store is built in process; with ``path`` it
    is loaded (optionally memory-mapped).  Load keys carry the absolute
    path, the ``mmap`` flag and the artifact's ``(mtime_ns, size)`` stamp,
    so a regenerated artifact misses the cache instead of serving stale
    columns; ``jobs`` only affects how a build miss is computed and is not
    part of the key.  Entries share one bounded LRU (and its
    :data:`~repro.analysis.store.STORE_CACHE_MAX` budget) with the census
    stores — repeated ensembles on one machine never reload the delta
    artifact, and a process cycling through many artifacts stays bounded.
    """
    from .store import (
        _STORE_CACHE,
        _STORE_CACHE_LOCK,
        _artifact_stamp,
        _cache_store,
        _count_cache_lookup,
    )

    if (n is None) == (path is None):
        raise ValueError("exactly one of n and path is required")
    if path is not None:
        key = (
            "delta-load", os.path.abspath(path), bool(mmap), _artifact_stamp(path)
        )
        with _STORE_CACHE_LOCK:
            store = _STORE_CACHE.get(key)
            _count_cache_lookup("delta-store", hit=store is not None)
            if store is None:
                store = DeltaStore.load(path, mmap=mmap)
            return _cache_store(key, store)

    key = ("delta-build", int(n))
    with _STORE_CACHE_LOCK:
        store = _STORE_CACHE.get(key)
        _count_cache_lookup("delta-store", hit=store is not None)
        if store is None:
            store = DeltaStore.build(n, jobs=jobs)
        return _cache_store(key, store)
