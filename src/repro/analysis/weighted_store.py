"""Persistent weighted scenario artifacts: columnar stores for ``t·W`` sweeps.

:func:`~repro.analysis.weighted.weighted_sweep` answers a whole scale grid
from one deviation-analysis pass, but its
:class:`~repro.analysis.weighted.WeightedSweepResult` is in-memory only —
every new grid, every new process and every ensemble draw re-runs the
boolean-matmul probe batch from scratch.  :class:`WeightedStore` is the
weighted counterpart of :class:`~repro.analysis.store.CensusStore`: the
per-probe ``(w, Δdist)`` coefficient columns of one ``(graph list, cost
model)`` pair, persisted once and queried forever:

* **columns, not recomputation** — per class: a packed upper-triangle
  certificate, the edge count, the total ordered-pair distance sum, the
  unscaled link spend ``Σ_e (w(u,v) + w(v,u))``, and the ragged CSR probe
  columns of :func:`repro.engine.batch.batch_weighted_columns` (removal
  ``(w, Δ)`` pairs, per-non-edge endpoint ``(w, save)`` 4-tuples);
* **query = the existing kernels** — stability masks, windows and sweep
  aggregates come straight from
  :func:`repro.engine.columnar.weighted_bcg_stable_mask` /
  :func:`~repro.engine.columnar.weighted_stability_windows` over the stored
  columns, float-for-float identical to the in-memory sweep (asserted for
  every connected class up to ``n = 7`` in the test suite, including across
  a save → load round trip in a separate process);
* **versioned, provenance-stamped persistence** — one ``.npz`` or a
  directory of mmap-able ``.npy`` columns, carrying the schema tag,
  :data:`FORMAT_VERSION`, ``n``, the dense weight matrix and (when built
  from the scenario library) the full :attr:`Scenario.params` recipe, so an
  artifact knows exactly which seeded scenario produced it and
  :func:`repro.analysis.scenarios.scenario_from_params` can rebuild the
  model bit-for-bit.

Builds mirror the census store: :meth:`build` chunks the canonical class
list over pool workers; :meth:`build_streamed` walks the sharded
canonical-augmentation tree (resumable via ``shard_dir``) and sorts the
merged columns into canonical census order, element-for-element identical
to :meth:`build`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy backs every column; the store refuses to build without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..costmodels.models import CostModel
from ..engine import (
    chunk_evenly,
    content_checksum,
    parallel_map,
    resolve_jobs,
    run_shards,
)
from ..engine.oracle import DistanceOracle
from ..engine.columnar import (
    canonical_sort_indices,
    certificate_to_graph,
    concat_csr,
    csr_invariant_errors,
    gather_segments,
    pack_certificates,
    ucg_nash_mask,
    weighted_bcg_stable_mask,
    weighted_stability_windows,
    weighted_ucg_windows,
)
from ..graphs import (
    Graph,
    canonical_graph,
    enumerate_connected_graphs,
    enumerate_graphs,
    is_connected,
    iter_graphs_from,
)
from ..graphs.isomorphism import clear_canonical_record

#: On-disk format version; bump on any incompatible schema change.
#: v2: optional UCG t-interval CSR columns (``ucg_lo``/``ucg_hi``/``ucg_indptr``).
FORMAT_VERSION = 2

#: Schema tag written into every artifact (guards against loading foreign files).
SCHEMA = "repro-weighted-store"

#: Dense per-class columns (``weight_matrix`` is per-artifact, not per-class).
_DENSE_COLUMNS = ("num_edges", "dist_total", "edge_cost_total", "cert_words")
#: Ragged probe columns in the batch_weighted_columns CSR layout.
_PROBE_COLUMNS = (
    "rem_w", "rem_delta", "rem_indptr",
    "add_w_u", "add_s_u", "add_w_v", "add_s_v", "add_indptr",
)
#: Optional UCG t-interval columns (present iff built with ``include_ucg``).
_UCG_COLUMNS = ("ucg_lo", "ucg_hi", "ucg_indptr")


def weighted_store_available() -> bool:
    """Whether the weighted store can be used (NumPy importable)."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "WeightedStore requires NumPy; use the per-graph "
            "WeightedStabilityProfile path instead"
        )
    return _np


class WeightedStore:
    """One weighted sweep's coefficient columns, persistent and queryable.

    Instances are produced by :meth:`build`, :meth:`build_streamed`,
    :meth:`from_scenario` or :meth:`load`; the constructor just wires up
    pre-validated columns.  Classes are kept in canonical census order, so
    row ``i`` here, row ``i`` of the scalar :class:`CensusStore` and graph
    ``i`` of :func:`weighted_census` describe the same isomorphism class.
    """

    def __init__(
        self,
        n: int,
        weight_matrix,
        num_edges,
        dist_total,
        edge_cost_total,
        cert_words,
        rem_w,
        rem_delta,
        rem_indptr,
        add_w_u,
        add_s_u,
        add_w_v,
        add_s_v,
        add_indptr,
        ucg_lo=None,
        ucg_hi=None,
        ucg_indptr=None,
        scenario_params: Optional[Dict[str, object]] = None,
    ) -> None:
        _require_numpy()
        self.n = int(n)
        self.weight_matrix = weight_matrix
        self.num_edges = num_edges
        self.dist_total = dist_total
        self.edge_cost_total = edge_cost_total
        self.cert_words = cert_words
        self.rem_w = rem_w
        self.rem_delta = rem_delta
        self.rem_indptr = rem_indptr
        self.add_w_u = add_w_u
        self.add_s_u = add_s_u
        self.add_w_v = add_w_v
        self.add_s_v = add_s_v
        self.add_indptr = add_indptr
        self.ucg_lo = ucg_lo
        self.ucg_hi = ucg_hi
        self.ucg_indptr = ucg_indptr
        self.scenario_params = dict(scenario_params) if scenario_params else None
        self._artifact_checksum = None  # checksum stamped on the loaded artifact

    @property
    def include_ucg(self) -> bool:
        """Whether the artifact carries UCG t-interval columns."""
        return self.ucg_indptr is not None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        n: int,
        model: CostModel,
        jobs: Optional[int] = None,
        scenario_params: Optional[Dict[str, object]] = None,
        include_ucg: bool = False,
    ) -> "WeightedStore":
        """Weighted columns for every connected class on ``n`` vertices.

        The class list, order and deviation analysis are exactly those of
        :func:`repro.analysis.weighted.weighted_census`; each pool worker
        emits column chunks (a dict of NumPy arrays), so the artifact never
        exists as per-graph Python objects.  ``include_ucg`` additionally
        runs the vectorised orientation engine per class and persists the
        UCG Nash t-interval endpoints (float-exact against
        :func:`~repro.costmodels.stability.weighted_ucg_nash_t_set`).
        """
        _require_numpy()
        matrix = model.coefficient_matrix(n)
        graphs = enumerate_connected_graphs(n)
        workers = resolve_jobs(jobs)
        chunks = chunk_evenly(graphs, max(1, workers * 4))
        tasks = [(chunk, model, matrix, n, include_ucg) for chunk in chunks]
        parts = parallel_map(_weighted_columns_chunk, tasks, jobs=jobs)
        # enumerate_connected_graphs is already canonically sorted and the
        # chunks preserve order, so no global sort is needed here.
        return cls._from_parts(n, matrix, parts, scenario_params, include_ucg)

    @classmethod
    def from_scenario(
        cls,
        scenario,
        jobs: Optional[int] = None,
        streamed: bool = False,
        include_ucg: bool = False,
        progress=None,
    ) -> "WeightedStore":
        """Build the artifact of one scenario-library :class:`Scenario`.

        The scenario's full :attr:`Scenario.params` recipe (name, ``n``,
        seed and family parameters) is stamped into the artifact metadata.
        ``progress`` (streamed builds only) is forwarded to
        :func:`repro.engine.run_shards` as its manifest-snapshot callback.
        """
        if streamed:
            return cls.build_streamed(
                scenario.n,
                scenario.model,
                jobs=jobs,
                scenario_params=dict(scenario.params),
                include_ucg=include_ucg,
                progress=progress,
            )
        if progress is not None:
            raise ValueError(
                "progress reporting requires streamed=True (the in-memory "
                "build has no shard events to report)"
            )
        return cls.build(
            scenario.n,
            scenario.model,
            jobs=jobs,
            scenario_params=dict(scenario.params),
            include_ucg=include_ucg,
        )

    @classmethod
    def build_streamed(
        cls,
        n: int,
        model: CostModel,
        jobs: Optional[int] = None,
        shard_level: Optional[int] = None,
        batch_size: int = 512,
        shard_dir: Optional[str] = None,
        scenario_params: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        progress=None,
        fault_plan=None,
        include_ucg: bool = False,
    ) -> "WeightedStore":
        """Build the columns by streaming the canonical-augmentation tree.

        The sharding scheme is the census store's (disjoint, jointly
        exhaustive subtrees below level-``shard_level`` roots); workers
        canonicalise each generated graph before pricing it, so the
        weights land on the same labelled representatives as :meth:`build`.
        The fan-out runs through :func:`repro.engine.run_shards`: with
        ``shard_dir`` every finished shard persists checksummed and
        fingerprinted over ``n`` *and* the weight matrix — an interrupted
        build resumes from every shard that verifies, corrupt files are
        recomputed, and a directory reused with a different cost model
        raises instead of merging silently — with progress/retry tallies in
        the directory's ``manifest.json``.  Worker crashes and per-shard
        ``timeout`` expiries re-queue only the incomplete shards.  The
        merged store is sorted into canonical census order,
        element-for-element identical to :meth:`build`.
        """
        _require_numpy()
        if n < 0:
            raise ValueError("n must be non-negative")
        matrix = model.coefficient_matrix(n)
        workers = resolve_jobs(jobs)
        if shard_level is None:
            shard_level = max(0, min(6, n - 2))
        shard_level = max(0, min(shard_level, n))
        roots = enumerate_graphs(shard_level)
        chunks = chunk_evenly(roots, max(1, workers * 4))
        tasks = [
            (chunk, model, matrix, n, batch_size, include_ucg)
            for chunk in chunks
        ]

        report = run_shards(
            _stream_weighted_chunk,
            tasks,
            jobs=jobs,
            shard_dir=shard_dir,
            prefix="wshard",
            fingerprint={
                "kind": SCHEMA,
                "format_version": FORMAT_VERSION,
                "n": int(n),
                "include_ucg": bool(include_ucg),
                "matrix": _np.asarray(matrix, dtype=_np.float64),
            },
            timeout=timeout,
            max_retries=max_retries,
            progress=progress,
            fault_plan=fault_plan,
        )

        store = cls._from_parts(
            n, matrix, report.parts, scenario_params, include_ucg
        )
        return store.sort_canonical()

    @classmethod
    def _from_parts(
        cls,
        n: int,
        matrix,
        parts: List[dict],
        scenario_params: Optional[Dict[str, object]],
        include_ucg: bool = False,
    ) -> "WeightedStore":
        np = _require_numpy()
        return cls(
            n=n,
            weight_matrix=np.asarray(matrix, dtype=np.float64),
            scenario_params=scenario_params,
            **_merge_parts(parts, n, include_ucg),
        )

    @classmethod
    def from_delta(
        cls,
        delta,
        model: CostModel,
        scenario_params: Optional[Dict[str, object]] = None,
        include_ucg: bool = False,
    ) -> "WeightedStore":
        """Materialise one draw's artifact from a shared model-independent
        :class:`~repro.analysis.delta_store.DeltaStore` — no deviation pass.

        The weight columns are a dense gather of the cost model's
        coefficient matrix at the delta store's probe endpoints, and the
        per-class link spend replicates :meth:`CostModel.bcg_edge_cost_total`
        term for term, so the result is float-for-float identical to
        :meth:`build` with the same model (asserted across the scenario
        registry in the test suite) at a tiny fraction of the cost.  This
        is what makes ``WeightedStore`` a thin (DeltaStore, weight-vector)
        view: every existing kernel, artifact format and test keeps
        working, while ensembles pay the delta pass once per ``n``.
        """
        np = _require_numpy()
        matrix = np.asarray(model.coefficient_matrix(delta.n), dtype=np.float64)
        players = max(delta.n, 1)
        # reshape keeps the n = 0 edge case indexable (asarray([]) is 1-D)
        matrix = matrix.reshape(players, players) if delta.n else matrix.reshape(0, 0)
        rem_w = matrix[delta.rem_pay, delta.rem_other] if delta.n else np.zeros(0)
        ucg = {}
        if include_ucg:
            # The delta columns are model-independent, so UCG intervals
            # cannot be gathered from them — run the orientation engine over
            # the decoded class representatives instead.
            from ..engine.batch import batch_ucg_columns

            graphs = [
                certificate_to_graph(delta.cert_words[i], delta.n)
                for i in range(int(np.asarray(delta.num_edges).shape[0]))
            ]
            ucg = batch_ucg_columns(graphs, model=model)
        return cls(
            n=delta.n,
            weight_matrix=matrix,
            num_edges=np.asarray(delta.num_edges),
            dist_total=np.asarray(delta.dist_total),
            edge_cost_total=_edge_cost_totals(delta, model, rem_w),
            cert_words=np.asarray(delta.cert_words),
            rem_w=rem_w,
            rem_delta=np.asarray(delta.rem_delta).astype(np.float64),
            rem_indptr=np.asarray(delta.rem_indptr),
            add_w_u=matrix[delta.add_u, delta.add_v] if delta.n else np.zeros(0),
            add_s_u=np.asarray(delta.add_s_u).astype(np.float64),
            add_w_v=matrix[delta.add_v, delta.add_u] if delta.n else np.zeros(0),
            add_s_v=np.asarray(delta.add_s_v).astype(np.float64),
            add_indptr=np.asarray(delta.add_indptr),
            scenario_params=scenario_params,
            **ucg,
        )

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #

    def sort_canonical(self) -> "WeightedStore":
        """A copy of the store in canonical census order (stable no-op key)."""
        order = canonical_sort_indices(self.num_edges, self.cert_words, self.n)
        return self.permute(order)

    def permute(self, order) -> "WeightedStore":
        """A copy with class ``order[i]`` moved to row ``i`` (all columns)."""
        rem_w, rem_indptr = gather_segments(self.rem_w, self.rem_indptr, order)
        rem_delta, _ = gather_segments(self.rem_delta, self.rem_indptr, order)
        add_w_u, add_indptr = gather_segments(
            self.add_w_u, self.add_indptr, order
        )
        add_s_u, _ = gather_segments(self.add_s_u, self.add_indptr, order)
        add_w_v, _ = gather_segments(self.add_w_v, self.add_indptr, order)
        add_s_v, _ = gather_segments(self.add_s_v, self.add_indptr, order)
        ucg = {}
        if self.include_ucg:
            ucg_lo, ucg_indptr = gather_segments(
                self.ucg_lo, self.ucg_indptr, order
            )
            ucg_hi, _ = gather_segments(self.ucg_hi, self.ucg_indptr, order)
            ucg = {
                "ucg_lo": ucg_lo,
                "ucg_hi": ucg_hi,
                "ucg_indptr": ucg_indptr,
            }
        return WeightedStore(
            n=self.n,
            weight_matrix=self.weight_matrix,
            num_edges=self.num_edges[order],
            dist_total=self.dist_total[order],
            edge_cost_total=self.edge_cost_total[order],
            cert_words=self.cert_words[order],
            rem_w=rem_w,
            rem_delta=rem_delta,
            rem_indptr=rem_indptr,
            add_w_u=add_w_u,
            add_s_u=add_s_u,
            add_w_v=add_w_v,
            add_s_v=add_s_v,
            add_indptr=add_indptr,
            scenario_params=self.scenario_params,
            **ucg,
        )

    # ------------------------------------------------------------------ #
    # Vectorised scale-grid queries (no recomputation, ever)
    # ------------------------------------------------------------------ #

    def _probe_columns(self) -> Tuple:
        return (
            self.rem_w, self.rem_delta, self.rem_indptr,
            self.add_w_u, self.add_s_u,
            self.add_w_v, self.add_s_v, self.add_indptr,
        )

    def stable_mask(self, ts: Sequence[float]):
        """``bool[n_classes, n_ts]`` weighted pairwise stability on a grid.

        Bit-identical to :func:`weighted_bcg_grid_mask` over the same
        graphs and model — the stored columns *are* that call's inputs.
        """
        return weighted_bcg_stable_mask(*self._probe_columns(), ts)

    def stable_counts(self, ts: Sequence[float]) -> List[int]:
        """Number of stable classes at every grid point."""
        return [int(count) for count in self.stable_mask(ts).sum(axis=0)]

    def stability_windows(self):
        """Per-class weighted Lemma 2 ``(t_min, t_max)`` arrays."""
        return weighted_stability_windows(*self._probe_columns())

    def _require_ucg(self) -> None:
        if not self.include_ucg:
            raise ValueError(
                "this weighted-store artifact carries no UCG columns; "
                "rebuild with include_ucg=True (CLI: scenarios --ucg)"
            )

    def ucg_nash_mask(self, ts: Sequence[float]):
        """``bool[n_classes, n_ts]`` UCG Nash supportability on a grid.

        Bit-identical to :meth:`AlphaIntervalSet.contains` over the stored
        t-interval endpoints — and those endpoints are float-exact against
        :func:`~repro.costmodels.stability.weighted_ucg_nash_t_set`.
        """
        self._require_ucg()
        return ucg_nash_mask(self.ucg_lo, self.ucg_hi, self.ucg_indptr, ts)

    def ucg_nash_counts(self, ts: Sequence[float]) -> List[int]:
        """Number of UCG Nash-supportable classes at every grid point."""
        return [int(count) for count in self.ucg_nash_mask(ts).sum(axis=0)]

    def ucg_windows(self):
        """Per-class UCG supportability hulls ``(t_min, t_max)``.

        Classes with no supportable threshold report ``(inf, -inf)``.
        """
        self._require_ucg()
        return weighted_ucg_windows(self.ucg_lo, self.ucg_hi, self.ucg_indptr)

    def aggregates(self, ts: Sequence[float]) -> Dict[str, list]:
        """Whole-grid sweep aggregates, float-exact vs :func:`weighted_sweep`.

        Returns ``bcg_counts``, ``average_links`` and
        ``average_social_cost`` lists (one entry per grid point), computed
        by the *same* aggregation code the in-memory sweep runs
        (:func:`repro.analysis.weighted.sweep_grid_aggregates`), so the
        numbers match to the last bit (``nan`` for grid points with no
        stable class).
        """
        from .weighted import sweep_grid_aggregates

        ts = [float(t) for t in ts]
        bcg_counts, average_links, average_social_cost = sweep_grid_aggregates(
            self.stable_mask(ts),
            ts,
            [int(m) for m in self.num_edges],
            self.edge_cost_total.tolist(),
            self.dist_total.tolist(),
        )
        return {
            "ts": ts,
            "bcg_counts": bcg_counts,
            "average_links": average_links,
            "average_social_cost": average_social_cost,
        }

    # ------------------------------------------------------------------ #
    # Introspection and decoding
    # ------------------------------------------------------------------ #

    def matrix(self) -> List[List[float]]:
        """The dense weight matrix the artifact was priced under."""
        return [[float(w) for w in row] for row in self.weight_matrix]

    def graph_at(self, index: int) -> Graph:
        """Rebuild the canonical representative stored at row ``index``."""
        return certificate_to_graph(self.cert_words[index], self.n)

    def graphs(self) -> List[Graph]:
        """Rebuild every stored representative (canonical census order)."""
        return [self.graph_at(i) for i in range(len(self))]

    def stable_graphs_at(self, t: float) -> List[Graph]:
        """The stable topologies under ``t·W`` (decoded from certificates)."""
        np = _np
        selected = self.stable_mask([t])[:, 0]
        return [self.graph_at(int(i)) for i in np.nonzero(selected)[0]]

    def __len__(self) -> int:
        return int(self.num_edges.shape[0])

    def _columns(self) -> Dict[str, object]:
        columns = {name: getattr(self, name) for name in _DENSE_COLUMNS}
        columns.update({name: getattr(self, name) for name in _PROBE_COLUMNS})
        if self.include_ucg:
            columns.update(
                {name: getattr(self, name) for name in _UCG_COLUMNS}
            )
        columns["weight_matrix"] = self.weight_matrix
        return columns

    @property
    def nbytes(self) -> int:
        """Resident bytes across every column."""
        return sum(array.nbytes for array in self._columns().values())

    def content_checksum(self) -> str:
        """sha256 over every column's name, dtype, shape and bytes."""
        return content_checksum(self._columns())

    def verify(self) -> Dict[str, object]:
        """Audit the artifact: checksum + structural invariants.

        Returns ``{"ok", "classes", "checksum", "errors"}`` (see
        :meth:`CensusStore.verify <repro.analysis.store.CensusStore.verify>`
        for the contract).  Structural checks: CSR layout of the probe
        columns, per-class probe counts against the edge counts (two
        ordered removal probes per edge, one addition probe per non-edge),
        a finite ``(n, n)`` weight matrix, and finite distance/spend
        totals.
        """
        np = _require_numpy()
        classes = len(self)
        errors: List[str] = []
        errors += csr_invariant_errors(
            "rem", self.rem_w.shape[0], self.rem_indptr, classes
        )
        errors += csr_invariant_errors(
            "add", self.add_w_u.shape[0], self.add_indptr, classes
        )
        if self.include_ucg:
            errors += csr_invariant_errors(
                "ucg", self.ucg_lo.shape[0], self.ucg_indptr, classes
            )
            if self.ucg_hi.shape != self.ucg_lo.shape:
                errors.append("ucg: ucg_hi and ucg_lo lengths differ")
            elif self.ucg_lo.shape[0] and bool(
                np.any(np.asarray(self.ucg_lo) > np.asarray(self.ucg_hi))
            ):
                errors.append("ucg: interval with lo > hi")
        for name in ("rem_delta",):
            if getattr(self, name).shape != self.rem_w.shape:
                errors.append(f"rem: {name} and rem_w lengths differ")
        for name in ("add_s_u", "add_w_v", "add_s_v"):
            if getattr(self, name).shape != self.add_w_u.shape:
                errors.append(f"add: {name} and add_w_u lengths differ")
        pairs = self.n * (self.n - 1) // 2
        edges = np.asarray(self.num_edges, dtype=np.int64)
        if classes:
            if bool(np.any(edges < 0)) or bool(np.any(edges > pairs)):
                errors.append(f"num_edges outside [0, {pairs}]")
            elif not errors:
                # Two ordered removal probes per edge (one per endpoint),
                # one addition probe per unordered non-edge.
                if bool(np.any(np.diff(self.rem_indptr) != 2 * edges)):
                    errors.append("rem: per-class probe counts != 2*num_edges")
                if bool(np.any(np.diff(self.add_indptr) != pairs - edges)):
                    errors.append("add: per-class probe counts != non-edges")
            for name in ("dist_total", "edge_cost_total"):
                if not bool(np.all(np.isfinite(np.asarray(getattr(self, name))))):
                    errors.append(f"{name} contains non-finite values")
        matrix = np.asarray(self.weight_matrix)
        if matrix.shape != (self.n, self.n):
            errors.append(
                f"weight_matrix has shape {matrix.shape}, expected "
                f"({self.n}, {self.n})"
            )
        elif not bool(np.all(np.isfinite(matrix))):
            errors.append("weight_matrix contains non-finite values")
        if self._artifact_checksum is None:
            checksum = "absent"
        elif self.content_checksum() == self._artifact_checksum:
            checksum = "ok"
        else:
            checksum = "mismatch"
            errors.append("content checksum does not match the saved stamp")
        return {
            "ok": not errors,
            "classes": classes,
            "checksum": checksum,
            "errors": errors,
        }

    def summary(self) -> Dict[str, object]:
        """Artifact metadata (used by the CLI and the report renderer)."""
        scenario = self.scenario_params or {}
        return {
            "n": self.n,
            "classes": len(self),
            "scenario": scenario.get("name"),
            "seed": scenario.get("seed"),
            "scenario_params": dict(scenario) or None,
            "format_version": FORMAT_VERSION,
            "include_ucg": self.include_ucg,
            "nbytes": self.nbytes,
            "column_bytes": {
                name: array.nbytes for name, array in self._columns().items()
            },
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(
        self, path: str, format: Optional[str] = None, compress: bool = False
    ) -> str:
        """Write the artifact to ``path``; returns the path written.

        ``format="npz"`` (default for ``*.npz`` paths) writes one NumPy
        archive; ``format="dir"`` writes a directory of raw ``.npy``
        columns plus ``meta.json`` — loadable with ``mmap=True`` so large
        ensembles of artifacts can be queried without resident copies.
        Both carry the schema tag, :data:`FORMAT_VERSION` and the scenario
        recipe.
        """
        start = time.perf_counter()
        written = self._save_impl(path, format, compress)
        obs.record_artifact_io(
            "save", "weighted", written, time.perf_counter() - start
        )
        return written

    def _save_impl(
        self, path: str, format: Optional[str], compress: bool
    ) -> str:
        np = _require_numpy()
        if format is None:
            format = "npz" if str(path).endswith(".npz") else "dir"
        if format not in ("npz", "dir"):
            raise ValueError("format must be 'npz' or 'dir'")
        scenario_json = json.dumps(self.scenario_params, sort_keys=True)
        if format == "npz":
            if not str(path).endswith(".npz"):
                # np.savez appends the suffix itself; make that explicit so
                # the returned path is the file actually written.
                path = f"{path}.npz"
            payload = dict(self._columns())
            payload["schema"] = np.str_(SCHEMA)
            payload["format_version"] = np.int64(FORMAT_VERSION)
            payload["n"] = np.int64(self.n)
            payload["scenario_json"] = np.str_(scenario_json)
            payload["checksum"] = np.str_(self.content_checksum())
            writer = np.savez_compressed if compress else np.savez
            writer(path, **payload)
            return path
        os.makedirs(path, exist_ok=True)
        columns = self._columns()
        meta = {
            "schema": SCHEMA,
            "format_version": FORMAT_VERSION,
            "n": self.n,
            "scenario": self.scenario_params,
            "columns": sorted(columns),
            "checksum": self.content_checksum(),
        }
        with open(os.path.join(path, "meta.json"), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, array in columns.items():
            np.save(os.path.join(path, f"{name}.npy"), array)
        return path

    @classmethod
    def load(cls, path: str, mmap: bool = False) -> "WeightedStore":
        """Load an artifact written by :meth:`save`.

        ``mmap=True`` memory-maps the columns and is only supported for the
        directory format (zip archives cannot be mapped page-aligned).
        """
        start = time.perf_counter()
        store = cls._load_impl(path, mmap)
        obs.record_artifact_io(
            "load", "weighted", path, time.perf_counter() - start
        )
        return store

    @classmethod
    def _load_impl(cls, path: str, mmap: bool) -> "WeightedStore":
        np = _require_numpy()
        if os.path.isdir(path):
            with open(os.path.join(path, "meta.json")) as handle:
                meta = json.load(handle)
            cls._check_meta(meta.get("schema"), meta.get("format_version"), path)
            mmap_mode = "r" if mmap else None
            columns = {
                name: np.load(
                    os.path.join(path, f"{name}.npy"), mmap_mode=mmap_mode
                )
                for name in meta["columns"]
            }
            store = cls(
                n=meta["n"], scenario_params=meta.get("scenario"), **columns
            )
            store._artifact_checksum = meta.get("checksum")
            return store
        if mmap:
            raise ValueError(
                "mmap loading requires the directory format; save with "
                "format='dir' for memory-mappable artifacts"
            )
        with np.load(path, allow_pickle=False) as data:
            schema = str(data["schema"]) if "schema" in data else None
            version = (
                int(data["format_version"]) if "format_version" in data else None
            )
            cls._check_meta(schema, version, path)
            scenario = json.loads(str(data["scenario_json"]))
            names = _DENSE_COLUMNS + _PROBE_COLUMNS + ("weight_matrix",)
            if "ucg_indptr" in data:
                names = names + _UCG_COLUMNS
            columns = {name: data[name] for name in names}
            store = cls(n=int(data["n"]), scenario_params=scenario, **columns)
            if "checksum" in data:
                store._artifact_checksum = str(data["checksum"])
            return store

    @staticmethod
    def _check_meta(schema: Optional[str], version: Optional[int], path: str) -> None:
        if schema != SCHEMA:
            raise ValueError(f"{path!r} is not a weighted-store artifact")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path!r} has weighted-store format version {version}; "
                f"this build reads version {FORMAT_VERSION}"
            )


# --------------------------------------------------------------------------- #
# Column assembly + pool workers (module-level for pickling)
# --------------------------------------------------------------------------- #


def _merge_parts(parts: List[dict], n: int, include_ucg: bool = False) -> dict:
    """Concatenate column-chunk dicts (CSR offsets rebased) into one dict.

    The single merge site for every build path — in-process chunks, shard
    files, streamed in-worker batches — so the column set cannot drift
    between them.
    """
    np = _require_numpy()
    parts = [part for part in parts if part["num_edges"].shape[0]] or [
        _empty_part(n, include_ucg)
    ]
    rem_w, rem_indptr = concat_csr([(p["rem_w"], p["rem_indptr"]) for p in parts])
    add_w_u, add_indptr = concat_csr(
        [(p["add_w_u"], p["add_indptr"]) for p in parts]
    )
    merged = {
        name: np.concatenate([p[name] for p in parts])
        for name in (
            "num_edges", "dist_total", "edge_cost_total", "cert_words",
            "rem_delta", "add_s_u", "add_w_v", "add_s_v",
        )
    }
    merged.update(
        rem_w=rem_w,
        rem_indptr=rem_indptr,
        add_w_u=add_w_u,
        add_indptr=add_indptr,
    )
    if include_ucg:
        ucg_lo, ucg_indptr = concat_csr(
            [(p["ucg_lo"], p["ucg_indptr"]) for p in parts]
        )
        ucg_hi, _ = concat_csr([(p["ucg_hi"], p["ucg_indptr"]) for p in parts])
        merged.update(ucg_lo=ucg_lo, ucg_hi=ucg_hi, ucg_indptr=ucg_indptr)
    return merged


def _empty_part(n: int, include_ucg: bool = False) -> dict:
    np = _require_numpy()
    part = {
        "num_edges": np.zeros(0, dtype=np.int32),
        "dist_total": np.zeros(0, dtype=np.float64),
        "edge_cost_total": np.zeros(0, dtype=np.float64),
        "cert_words": pack_certificates([], n),
        "rem_w": np.zeros(0, dtype=np.float64),
        "rem_delta": np.zeros(0, dtype=np.float64),
        "rem_indptr": np.zeros(1, dtype=np.int64),
        "add_w_u": np.zeros(0, dtype=np.float64),
        "add_s_u": np.zeros(0, dtype=np.float64),
        "add_w_v": np.zeros(0, dtype=np.float64),
        "add_s_v": np.zeros(0, dtype=np.float64),
        "add_indptr": np.zeros(1, dtype=np.int64),
    }
    if include_ucg:
        part["ucg_lo"] = np.zeros(0, dtype=np.float64)
        part["ucg_hi"] = np.zeros(0, dtype=np.float64)
        part["ucg_indptr"] = np.zeros(1, dtype=np.int64)
    return part


def _edge_cost_totals(delta, model: CostModel, rem_w):
    """Per-class BCG link spend from delta columns, exact vs the Python path.

    :meth:`CostModel.bcg_edge_cost_total` sums ``w(u,v) + w(v,u)`` over
    ``sorted_edges`` left to right — and the removal probes sit in exactly
    that order, endpoint ``u`` first.  Pairing consecutive probe weights
    and accumulating one edge rank at a time replays the identical float64
    addition sequence per class; the uniform family keeps its ``2α·m``
    closed form.  The edge-rank loop is bounded by ``n(n-1)/2``, not the
    class count, so it stays cheap at any census size.
    """
    np = _require_numpy()
    alpha = model.uniform_alpha()
    num_edges = np.asarray(delta.num_edges)
    if alpha is not None:
        return 2.0 * alpha * num_edges.astype(np.float64)
    pair = rem_w[0::2] + rem_w[1::2]
    indptr = np.asarray(delta.rem_indptr)
    starts = indptr[:-1] // 2
    counts = np.diff(indptr) // 2
    totals = np.zeros(counts.shape[0], dtype=np.float64)
    for rank in range(int(counts.max()) if counts.size else 0):
        active = counts > rank
        totals[active] = totals[active] + pair[starts[active] + rank]
    return totals


def _weighted_part(
    graphs: List[Graph],
    model: CostModel,
    matrix,
    n: int,
    oracle: Optional[DistanceOracle],
    include_ucg: bool = False,
) -> dict:
    """One column chunk: probe columns + dense provenance for ``graphs``.

    ``edge_cost_total`` goes through :meth:`CostModel.bcg_edge_cost_total`
    (not a matrix summation) so family-specific exact closed forms — the
    uniform model's ``2α·m`` — survive into the artifact and the
    aggregates stay float-exact against the in-memory sweep.
    """
    from ..engine.batch import batch_ucg_columns, batch_weighted_columns

    np = _require_numpy()
    if not graphs:
        return _empty_part(n, include_ucg)
    part = batch_weighted_columns(graphs, matrix, oracle=oracle)
    part["edge_cost_total"] = np.asarray(
        [model.bcg_edge_cost_total(graph) for graph in graphs], dtype=np.float64
    )
    part["cert_words"] = pack_certificates(
        [graph.adjacency_bitstring() for graph in graphs], n
    )
    if include_ucg:
        part.update(batch_ucg_columns(graphs, model=model, oracle=oracle))
    return part


def _weighted_columns_chunk(task: Tuple) -> dict:
    graphs, model, matrix, n, include_ucg = task
    return _weighted_part(graphs, model, matrix, n, DistanceOracle(), include_ucg)


def _stream_weighted_chunk(task: Tuple) -> dict:
    """Generate-and-price one generation-tree shard into weighted columns."""
    roots, model, matrix, n, batch_size, include_ucg = task
    oracle = DistanceOracle()
    parts: List[dict] = []
    pending: List[Graph] = []

    def flush() -> None:
        parts.append(
            _weighted_part(pending, model, matrix, n, oracle, include_ucg)
        )
        for graph in pending:
            clear_canonical_record(graph)
        obs.counter(
            "repro_stream_classes_total",
            "Graph classes analysed by streamed store builds",
            store="weighted",
        ).inc(len(pending))
        pending.clear()

    for root in roots:
        for graph in iter_graphs_from(root, n):
            if not is_connected(graph):
                continue
            pending.append(canonical_graph(graph))
            if len(pending) >= batch_size:
                flush()
    if pending:
        flush()
    return _merge_parts(parts, n, include_ucg)


# --------------------------------------------------------------------------- #
# Process-wide weighted-store cache (shares the census-store LRU budget)
# --------------------------------------------------------------------------- #


def cached_weighted_store(path: str, mmap: bool = False) -> WeightedStore:
    """Load (or fetch) a weighted artifact through the shared store LRU.

    The :func:`~repro.analysis.store.cached_store` pattern for weighted
    artifacts — load-only, since a weighted build needs a full scenario
    recipe and belongs to :meth:`WeightedStore.from_scenario`.  Keys carry
    the absolute path, the ``mmap`` flag and the artifact's
    ``(mtime_ns, size)`` stamp, so an artifact regenerated in place misses
    the cache instead of serving stale columns.  Entries share one bounded
    LRU (and its :data:`~repro.analysis.store.STORE_CACHE_MAX` budget, and
    its lock — lookups are thread-safe) with the census and delta stores,
    which is what lets the long-running query service keep its working set
    of mixed artifacts hot without unbounded growth.
    """
    from .store import (
        _STORE_CACHE,
        _STORE_CACHE_LOCK,
        _artifact_stamp,
        _cache_store,
        _count_cache_lookup,
    )

    key = (
        "weighted-load", os.path.abspath(path), bool(mmap), _artifact_stamp(path)
    )
    with _STORE_CACHE_LOCK:
        store = _STORE_CACHE.get(key)
        _count_cache_lookup("weighted-store", hit=store is not None)
        if store is None:
            store = WeightedStore.load(path, mmap=mmap)
        return _cache_store(key, store)
