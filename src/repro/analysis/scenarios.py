"""Scenario library: named heterogeneous link-cost configurations.

Each scenario packages a player count and a
:class:`~repro.costmodels.models.CostModel` capturing one stylised peering
economy, ready for :func:`~repro.analysis.weighted.weighted_sweep` /
:func:`~repro.analysis.weighted.weighted_census` over a scale grid (the
sweep plays ``C = t·W`` at every grid point ``t``):

* ``two_tier_isp`` — per-player rates: a small tier-1 core builds links
  cheaply, the stub networks dearly (asymmetric peering costs);
* ``hub_discounted`` — per-edge prices with every link into one hub (an
  exchange point) discounted relative to the flat rate;
* ``line_metric`` — distance-to-metric: players sit on a line and a link's
  price is proportional to the metric distance it spans (longer haul,
  higher build-out cost);
* ``random_weights`` — a seeded random per-edge ensemble (uniform prices in
  ``[low, high]``), the null model heterogeneous results are compared to.

Every factory is deterministic in ``(n, seed, params)`` — the RNG is a
dedicated ``random.Random(seed)`` — so parallel and repeated sweeps agree
exactly.  The registry is what the CLI ``scenarios`` subcommand exposes.

:attr:`Scenario.params` is the **single source of truth** for reproduction:
every factory records the complete recipe (``name``, ``n``, ``seed`` and all
family parameters, defaults included) in ``params``, and
:func:`scenario_from_params` rebuilds a bit-identical scenario — same weight
matrix, float for float — from that dict alone.  This is what lets the
persistent weighted artifacts (:mod:`repro.analysis.weighted_store`) and the
ensemble runner (:mod:`repro.analysis.ensembles`) stamp provenance into
their metadata and re-instantiate the exact cost model later.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..costmodels.models import CostModel, PerEdgeCost, PerPlayerCost
from .sweeps import log_spaced_alphas
from .weighted import WeightedSweepResult, weighted_census


@dataclass(frozen=True)
class Scenario:
    """A named heterogeneous link-cost configuration on ``n`` players.

    ``params`` carries the complete reproduction recipe — ``name``, ``n``,
    ``seed`` and every family parameter with its resolved value — so
    ``scenario_from_params(scenario.params)`` rebuilds the identical weight
    matrix.  The ``name``/``n`` fields are convenience mirrors of the
    corresponding ``params`` entries, checked for consistency on creation.
    """

    name: str
    description: str
    n: int
    model: CostModel
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, value in (("name", self.name), ("n", self.n)):
            if key in self.params and self.params[key] != value:
                raise ValueError(
                    f"scenario {key}={value!r} disagrees with "
                    f"params[{key!r}]={self.params[key]!r}"
                )


def _recipe(name: str, n: int, seed: int, **family_params) -> Dict[str, object]:
    """The full ``Scenario.params`` dict of one factory invocation."""
    params: Dict[str, object] = {"name": name, "n": int(n), "seed": int(seed)}
    params.update(family_params)
    return params


def two_tier_isp(
    n: int,
    seed: int = 0,
    core: int = 2,
    core_alpha: float = 0.5,
    stub_alpha: float = 2.0,
) -> Scenario:
    """Asymmetric two-tier ISP market: a cheap core, expensive stubs.

    Players ``0 .. core-1`` are tier-1 backbones paying ``core_alpha`` per
    link; the rest are stub networks paying ``stub_alpha``.  ``seed`` is
    accepted (registry contract) but unused — the scenario is deterministic.
    """
    if not 0 < core <= n:
        raise ValueError("the core size must satisfy 0 < core <= n")
    rates = [core_alpha if i < core else stub_alpha for i in range(n)]
    return Scenario(
        name="two_tier_isp",
        description=(
            f"{core} tier-1 players at α={core_alpha:g}, "
            f"{n - core} stubs at α={stub_alpha:g}"
        ),
        n=n,
        model=PerPlayerCost(rates),
        params=_recipe(
            "two_tier_isp", n, seed,
            core=core, core_alpha=core_alpha, stub_alpha=stub_alpha,
        ),
    )


def hub_discounted(
    n: int,
    seed: int = 0,
    hub: int = 0,
    alpha: float = 1.0,
    discount: float = 0.25,
) -> Scenario:
    """Per-edge prices with links into one hub discounted.

    Every pair costs ``alpha`` except pairs containing ``hub``, which cost
    ``discount·alpha`` — an exchange point subsidising attachment.
    """
    if not 0 <= hub < n:
        raise ValueError("the hub must be one of the players")
    if not 0 < discount:
        raise ValueError("the discount factor must be strictly positive")
    weights = [
        [
            0.0
            if i == j
            else (discount * alpha if hub in (i, j) else alpha)
            for j in range(n)
        ]
        for i in range(n)
    ]
    return Scenario(
        name="hub_discounted",
        description=(
            f"flat α={alpha:g}, links into hub {hub} at {discount:g}×α"
        ),
        n=n,
        model=PerEdgeCost(weights),
        params=_recipe(
            "hub_discounted", n, seed, hub=hub, alpha=alpha, discount=discount
        ),
    )


def line_metric(n: int, seed: int = 0, alpha: float = 1.0) -> Scenario:
    """Distance-to-metric prices: players on a line, cost ∝ span.

    Player ``i`` sits at position ``i``; pair ``{i, j}`` costs
    ``alpha·|i - j|`` to each endpoint.
    """
    weights = [
        [0.0 if i == j else alpha * abs(i - j) for j in range(n)]
        for i in range(n)
    ]
    return Scenario(
        name="line_metric",
        description=f"line metric, pair {{i,j}} costs {alpha:g}·|i-j|",
        n=n,
        model=PerEdgeCost(weights),
        params=_recipe("line_metric", n, seed, alpha=alpha),
    )


def random_weights(
    n: int,
    seed: int = 0,
    low: float = 0.5,
    high: float = 2.0,
) -> Scenario:
    """Seeded random per-edge ensemble: pair prices uniform in ``[low, high]``."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    rng = random.Random(seed)
    weights = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            weights[i][j] = weights[j][i] = rng.uniform(low, high)
    return Scenario(
        name="random_weights",
        description=(
            f"random pair prices uniform in [{low:g}, {high:g}] (seed {seed})"
        ),
        n=n,
        model=PerEdgeCost(weights),
        params=_recipe("random_weights", n, seed, low=low, high=high),
    )


#: Registry of scenario factories: ``name -> factory(n, seed=..., **params)``.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "two_tier_isp": two_tier_isp,
    "hub_discounted": hub_discounted,
    "line_metric": line_metric,
    "random_weights": random_weights,
}


def available_scenarios() -> List[str]:
    """The registered scenario names, sorted."""
    return sorted(SCENARIOS)


def build_scenario(name: str, n: int, /, seed: int = 0, **params) -> Scenario:
    """Instantiate a registered scenario by name.

    ``name`` and ``n`` are positional-only, so ``params`` may be a full
    :attr:`Scenario.params` recipe: redundant ``name``/``n`` entries are
    accepted when they agree with the explicit arguments (and rejected when
    they disagree), and ``build_scenario(s.name, s.n, **s.params)``
    round-trips.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None
    for key, value in (("name", name), ("n", int(n))):
        if key in params:
            if params[key] != value:
                raise ValueError(
                    f"scenario {key}={value!r} disagrees with "
                    f"params[{key!r}]={params[key]!r}"
                )
            params = {k: v for k, v in params.items() if k != key}
    return factory(n, seed=seed, **params)


def scenario_from_params(params: Dict[str, object]) -> Scenario:
    """Rebuild a scenario from a :attr:`Scenario.params` recipe dict.

    The inverse of every factory: ``scenario_from_params(s.params)``
    reproduces ``s`` exactly — in particular the weight matrix is
    bit-for-bit identical, because the recipe records every parameter
    (``seed`` included) with its resolved value, so no registry default is
    re-applied on the round trip.  This is how persisted weighted artifacts
    and ensemble draws re-instantiate their cost model from metadata.
    """
    params = dict(params)
    try:
        name = params.pop("name")
        n = params.pop("n")
    except KeyError as missing:
        raise ValueError(
            f"scenario params must record {missing.args[0]!r}; got keys "
            f"{sorted(params)} (params written before the full-recipe "
            "contract must be rebuilt via build_scenario)"
        ) from None
    return build_scenario(str(name), int(n), **params)


def default_t_grid(n: int, count: int = 12) -> List[float]:
    """The default scale grid of a scenario sweep (log-spaced, like figures)."""
    return log_spaced_alphas(0.2, float(n * n), max(2, count))


def scenario_sweep(
    scenario: Scenario,
    ts: Optional[Sequence[float]] = None,
    grid: int = 12,
    include_ucg: bool = False,
    jobs: Optional[int] = None,
) -> WeightedSweepResult:
    """Weighted census of every connected class under the scenario's model."""
    if ts is None:
        ts = default_t_grid(scenario.n, grid)
    return weighted_census(
        scenario.n, scenario.model, ts, include_ucg=include_ucg, jobs=jobs
    )
