"""Seeded scenario ensembles: stability statistics over many weight draws.

:func:`~repro.analysis.scenarios.random_weights` (and every registry
scenario — the factories all take a ``seed``) describes a *distribution*
over cost models, but a single sweep sees one draw.  The ensemble runner
asks the distributional question: over ``K`` seeded draws of a scenario on
``n`` players, how many topologies are stable at each scale ``t``, and
where do the per-class stability windows land — on average, how spread
out, and at which quantiles?

The Δdist probe columns depend only on the topology class list — per seed,
only the weight pairings change — so the runner amortises the expensive
part across the whole ensemble instead of paying it per draw:

* the deviation analysis runs **once per n** into a shared model-independent
  :class:`~repro.analysis.delta_store.DeltaStore` (reused from the process
  LRU, or persisted/mmapped via ``delta_cache``);
* draws are chunked into ``batch_draws``-sized blocks, each answered by
  the stacked multi-draw kernels
  (:func:`repro.engine.columnar.weighted_bcg_stable_mask_multi` /
  :func:`~repro.engine.columnar.weighted_stability_windows_multi`) — one
  dense ``(K, P)`` pass whose per-draw rows are **bit-identical** to the
  per-draw weighted kernels, so amortisation never changes a number;
* blocks fan out over ``jobs`` pool workers in bounded waves and feed
  :class:`~repro.engine.streaming.StreamingEnsembleStats` aggregators in
  draw order, so results are identical for any worker count or batch size
  and peak aggregation memory is independent of ``K`` (bit-exact dense
  aggregation below ``window_exact_buffer`` draws; exact moments + P²
  quantile sketches beyond — see the streaming module's contract);
* with ``save_dir`` every draw persists its
  :class:`~repro.analysis.weighted_store.WeightedStore` artifact
  (``draw_XXXX_seedS.npz``, materialised from the shared delta columns),
  stamped with the full scenario recipe; an interrupted or repeated run
  **resumes** by loading matching artifacts instead of recomputing, and
  the ``resumed``/``recomputed`` tallies on the result make that auditable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy backs the stacked kernels and the streaming aggregation.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from .. import obs
from ..engine import run_shards
from ..engine.columnar import ensemble_stats
from ..engine.streaming import DEFAULT_EXACT_BUFFER, StreamingEnsembleStats
from .delta_store import DeltaStore, cached_delta_store
from .scenarios import build_scenario, default_t_grid
from .store import LOAD_ERRORS
from .weighted_store import WeightedStore, weighted_store_available

#: Quantiles reported by default (quartiles: lower, median, upper).
DEFAULT_QUANTILES = (0.25, 0.5, 0.75)

#: Draws answered per stacked-kernel block (one pool task each).
DEFAULT_BATCH_DRAWS = 16


def ensemble_seeds(seed: int, draws: int) -> List[int]:
    """The per-draw seeds of an ensemble: ``seed, seed+1, …, seed+K-1``.

    Consecutive offsets keep the mapping transparent (draw ``k`` of base
    seed ``s`` is exactly the single sweep ``seed=s+k``) and collision-free
    within one ensemble.
    """
    if draws < 1:
        raise ValueError("an ensemble needs at least one draw")
    return [int(seed) + k for k in range(int(draws))]


@dataclass
class EnsembleResult:
    """Aggregated stability statistics of one seeded scenario ensemble.

    ``count_stats`` summarises the per-``t`` stable-class counts across
    draws; ``t_min_stats`` / ``t_max_stats`` summarise the per-class
    window endpoints across draws (entry ``i`` describes isomorphism
    class ``i`` in canonical census order).  Every stats dict holds
    ``mean``/``std``/``min``/``max`` lists plus a ``quantiles`` mapping
    ``{q: [...]}`` — the :func:`repro.engine.columnar.ensemble_stats`
    shape (window stats stream through
    :class:`~repro.engine.streaming.StreamingEnsembleStats` past the
    exact-buffer threshold).
    """

    scenario: str
    n: int
    draws: int
    seed: int
    seeds: List[int]
    ts: List[float]
    #: Per-draw stable counts as an ``int64[draws, len(ts)]`` ndarray —
    #: ``counts[k, j]`` = draw ``k`` at ``ts[j]``.
    counts: object
    count_stats: Dict[str, object]
    t_min_stats: Dict[str, object]
    t_max_stats: Dict[str, object]
    #: One artifact path per draw when ``save_dir`` was given.
    artifact_paths: Optional[List[str]] = None
    #: Extra family parameters the draws were built with.
    params: Dict[str, object] = field(default_factory=dict)
    #: Draws answered by loading a matching saved artifact.
    resumed: int = 0
    #: Draws computed this run (no artifact, unreadable, or recipe mismatch).
    recomputed: int = 0

    @property
    def classes(self) -> int:
        """Number of isomorphism classes summarised per draw."""
        return len(self.t_min_stats["mean"])


def _draw_path(save_dir: str, index: int, seed: int, save_format: str) -> str:
    name = f"draw_{index:04d}_seed{seed}"
    return os.path.join(
        save_dir, f"{name}.npz" if save_format == "npz" else name
    )


def _resolve_delta_spec(spec) -> DeltaStore:
    kind, payload, mmap = spec
    if kind == "path":
        return cached_delta_store(path=payload, mmap=mmap)
    return payload


def _ensemble_batch(task: Tuple):
    """Pool worker: one block of draws → stacked rows + resume tallies.

    Draws whose artifact already exists with the exact scenario recipe
    (same name/n/seed/params) are answered from the loaded store; the rest
    are answered in one stacked-kernel pass over the shared delta columns
    — row for row bit-identical to the per-draw kernels — and persisted
    (via :meth:`WeightedStore.from_delta`) when a ``save_path`` is set.
    Returns ``(counts, t_min, t_max, resumed, recomputed)`` with the row
    blocks stacked in draw order.
    """
    name, n, block, params, ts, delta_spec, save_format = task
    with obs.histogram(
        "repro_ensemble_block_seconds", "Wall seconds per ensemble draw block"
    ).time():
        return _ensemble_batch_body(name, n, block, params, ts, delta_spec, save_format)


def _ensemble_batch_body(name, n, block, params, ts, delta_spec, save_format):
    delta = _resolve_delta_spec(delta_spec)
    size = len(block)
    counts_rows: List = [None] * size
    t_min_rows: List = [None] * size
    t_max_rows: List = [None] * size
    resumed = 0
    fresh: List[Tuple[int, object, Optional[str]]] = []

    for position, (draw_seed, save_path) in enumerate(block):
        scenario = build_scenario(name, n, seed=draw_seed, **params)
        store = None
        if save_path is not None and os.path.exists(save_path):
            try:
                candidate = WeightedStore.load(save_path)
            except LOAD_ERRORS:
                candidate = None  # unreadable/foreign artifact: recompute
            if candidate is not None and candidate.scenario_params == scenario.params:
                store = candidate
        if store is None:
            fresh.append((position, scenario, save_path))
            continue
        resumed += 1
        counts_rows[position] = np.asarray(store.stable_counts(ts), dtype=np.int64)
        t_min, t_max = store.stability_windows()
        t_min_rows[position] = t_min
        t_max_rows[position] = t_max

    if fresh:
        matrices = [scenario.model.coefficient_matrix(n) for _, scenario, _ in fresh]
        counts_multi = delta.stable_counts_multi(matrices, ts)
        t_min_multi, t_max_multi = delta.stability_windows_multi(matrices)
        for row, (position, scenario, save_path) in enumerate(fresh):
            counts_rows[position] = counts_multi[row]
            t_min_rows[position] = t_min_multi[row]
            t_max_rows[position] = t_max_multi[row]
            if save_path is not None:
                WeightedStore.from_delta(
                    delta, scenario.model, scenario_params=dict(scenario.params)
                ).save(save_path, format=save_format)

    return (
        np.stack(counts_rows),
        np.stack(t_min_rows),
        np.stack(t_max_rows),
        resumed,
        len(fresh),
    )


def run_ensemble(
    scenario: str = "random_weights",
    n: int = 6,
    draws: int = 8,
    seed: int = 0,
    ts: Optional[Sequence[float]] = None,
    grid: int = 12,
    jobs: Optional[int] = None,
    save_dir: Optional[str] = None,
    save_format: str = "npz",
    params: Optional[Dict[str, object]] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    delta: Optional[DeltaStore] = None,
    delta_cache: Optional[str] = None,
    batch_draws: int = DEFAULT_BATCH_DRAWS,
    window_exact_buffer: int = DEFAULT_EXACT_BUFFER,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    progress=None,
    fault_plan=None,
) -> EnsembleResult:
    """Sweep ``draws`` seeded instances of a scenario and aggregate.

    Draw ``k`` plays the registered ``scenario`` on ``n`` players with seed
    ``seed + k`` (extra factory ``params`` — e.g. ``low``/``high`` for
    ``random_weights`` — are passed through and recorded in every
    artifact's recipe).  The deviation analysis runs once into a shared
    :class:`DeltaStore` — pass ``delta`` to reuse one you already hold, or
    ``delta_cache`` to load (mmap, for directory artifacts) / build-and-save
    a persistent one; otherwise the per-process LRU builds it on first use.
    Draws are then answered ``batch_draws`` at a time by the stacked
    multi-draw kernels, fanned over ``jobs`` pool workers in bounded waves
    and aggregated as a stream — results are identical for any ``jobs`` or
    ``batch_draws`` value, and bit-identical to the per-draw path (window
    stats: bit-exact up to ``window_exact_buffer`` draws, exact
    moments/extrema + P² quantile sketches beyond).  ``ts`` defaults to
    the scenario library's log-spaced ``grid``-point scale grid.

    With ``save_dir``, each draw persists one :class:`WeightedStore`
    artifact there (``save_format`` ``"npz"`` or ``"dir"``) and matching
    artifacts already on disk are loaded instead of recomputed; the
    ``resumed``/``recomputed`` tallies on the result record the split.

    The block fan-out runs through :func:`repro.engine.run_shards`, so a
    crashed or hung pool worker re-queues only its own draw blocks
    (``timeout``/``max_retries`` bound each block attempt) and, with
    ``save_dir``, a ``manifest.json`` there tracks block progress and retry
    tallies; ``progress`` receives each manifest snapshot.
    """
    if not weighted_store_available():
        raise RuntimeError(
            "the ensemble runner requires NumPy (it aggregates weighted "
            "store columns); install numpy or sweep draws one at a time "
            "with weighted_python_sweep_bcg"
        )
    params = dict(params or {})
    for reserved in ("name", "n", "seed"):
        params.pop(reserved, None)
    ts = (
        default_t_grid(n, grid) if ts is None else [float(t) for t in ts]
    )
    seeds = ensemble_seeds(seed, draws)
    if batch_draws < 1:
        raise ValueError("batch_draws must be positive")
    if save_dir is not None:
        if save_format not in ("npz", "dir"):
            raise ValueError("save_format must be 'npz' or 'dir'")
        os.makedirs(save_dir, exist_ok=True)

    # One delta pass for the whole ensemble, whatever its size.
    delta_spec = None
    if delta is None:
        if delta_cache is not None:
            if not os.path.exists(delta_cache):
                built = DeltaStore.build(n, jobs=jobs)
                built.save(
                    delta_cache,
                    format="npz" if str(delta_cache).endswith(".npz") else "dir",
                )
            mmap = os.path.isdir(delta_cache)
            delta = cached_delta_store(path=delta_cache, mmap=mmap)
            delta_spec = ("path", delta_cache, mmap)
        else:
            delta = cached_delta_store(n=n, jobs=jobs)
    if delta.n != int(n):
        raise ValueError(
            f"delta store is for n = {delta.n}, ensemble asked for n = {n}"
        )
    if delta_spec is None:
        delta_spec = ("store", delta, False)

    paths = (
        None
        if save_dir is None
        else [
            _draw_path(save_dir, index, draw_seed, save_format)
            for index, draw_seed in enumerate(seeds)
        ]
    )
    blocks = [
        [
            (seeds[k], None if paths is None else paths[k])
            for k in range(start, min(start + batch_draws, draws))
        ]
        for start in range(0, draws, int(batch_draws))
    ]
    tasks = [
        (scenario, int(n), block, params, ts, delta_spec, save_format)
        for block in blocks
    ]

    classes = len(delta)
    t_min_agg = StreamingEnsembleStats(
        classes, quantiles=quantiles, exact_buffer=window_exact_buffer
    )
    t_max_agg = StreamingEnsembleStats(
        classes, quantiles=quantiles, exact_buffer=window_exact_buffer
    )
    count_blocks: List = []
    resumed = 0
    recomputed = 0

    def _fold(index: int, block) -> None:
        # run_shards delivers blocks strictly in index (draw) order, so the
        # streaming aggregators see exactly the serial fold sequence and the
        # result stays bit-identical for any jobs value.
        nonlocal resumed, recomputed
        counts_block, t_min_block, t_max_block, block_resumed, block_recomputed = block
        count_blocks.append(counts_block)
        t_min_agg.update(t_min_block)
        t_max_agg.update(t_max_block)
        resumed += block_resumed
        recomputed += block_recomputed
        if obs.metrics_enabled():
            obs.counter(
                "repro_ensemble_draws_total",
                "Ensemble draws aggregated (draws/sec over a scrape window)",
            ).inc(block_resumed + block_recomputed)
            obs.counter(
                "repro_ensemble_draws_resumed_total",
                "Ensemble draws answered from existing artifacts",
            ).inc(block_resumed)
            obs.counter(
                "repro_ensemble_draws_recomputed_total",
                "Ensemble draws recomputed through the stacked kernels",
            ).inc(block_recomputed)

    # The work-queue runner bounds in-flight blocks at the worker count, so
    # peak memory is set by (workers × batch_draws), not K — and a crashed
    # worker costs one block, not the whole wave.  The manifest (block
    # progress, retry tallies) lands next to the draw artifacts.
    with obs.span("run_ensemble"):
        run_shards(
            _ensemble_batch,
            tasks,
            jobs=jobs,
            prefix="block",
            consume=_fold,
            manifest_dir=save_dir,
            fingerprint={
                "kind": "repro-ensemble",
                "scenario": scenario,
                "n": int(n),
                "seed": int(seed),
                "draws": int(draws),
                "batch_draws": int(batch_draws),
                "params": params,
                "ts": [float(t) for t in ts],
            },
            timeout=timeout,
            max_retries=max_retries,
            progress=progress,
            fault_plan=fault_plan,
        )

    counts = np.concatenate(count_blocks, axis=0)
    count_indptr = np.arange(draws + 1, dtype=np.int64) * len(ts)
    count_stats = ensemble_stats(
        counts.astype(np.float64).ravel(), count_indptr, quantiles=quantiles
    )

    return EnsembleResult(
        scenario=scenario,
        n=int(n),
        draws=int(draws),
        seed=int(seed),
        seeds=seeds,
        ts=list(ts),
        counts=counts,
        count_stats=count_stats,
        t_min_stats=t_min_agg.finalize(),
        t_max_stats=t_max_agg.finalize(),
        artifact_paths=paths,
        params=params,
        resumed=resumed,
        recomputed=recomputed,
    )
