"""Seeded scenario ensembles: stability statistics over many weight draws.

:func:`~repro.analysis.scenarios.random_weights` (and every registry
scenario — the factories all take a ``seed``) describes a *distribution*
over cost models, but a single sweep sees one draw.  The ensemble runner
asks the distributional question: over ``K`` seeded draws of a scenario on
``n`` players, how many topologies are stable at each scale ``t``, and
where do the per-class stability windows land — on average, how spread
out, and at which quantiles?

The workload is embarrassingly parallel over draws, and that is exactly
how it runs:

* each draw is one pool task (:func:`repro.engine.parallel_map`, results
  in draw order, so serial and pooled runs are **identical** — asserted in
  the test suite for ``jobs=1`` vs ``jobs=4``);
* a draw builds its :class:`~repro.analysis.weighted_store.WeightedStore`
  columns once and answers counts + windows from the weighted kernels;
* with ``save_dir`` every draw persists its artifact
  (``draw_XXXX_seedS.npz``), stamped with the full scenario recipe; an
  interrupted or repeated run **resumes** by loading matching artifacts
  instead of recomputing, and the saved stores can be re-queried on any
  grid later without touching the deviation analysis again;
* per-``t`` stable counts and per-class window endpoints are aggregated
  across draws into mean/std/min/max/quantile summaries by the segmented
  :func:`repro.engine.columnar.ensemble_stats` kernel — one deterministic
  vectorised pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import parallel_map
from ..engine.columnar import ensemble_stats
from .scenarios import build_scenario, default_t_grid
from .store import LOAD_ERRORS
from .weighted_store import WeightedStore, weighted_store_available

#: Quantiles reported by default (quartiles: lower, median, upper).
DEFAULT_QUANTILES = (0.25, 0.5, 0.75)


def ensemble_seeds(seed: int, draws: int) -> List[int]:
    """The per-draw seeds of an ensemble: ``seed, seed+1, …, seed+K-1``.

    Consecutive offsets keep the mapping transparent (draw ``k`` of base
    seed ``s`` is exactly the single sweep ``seed=s+k``) and collision-free
    within one ensemble.
    """
    if draws < 1:
        raise ValueError("an ensemble needs at least one draw")
    return [int(seed) + k for k in range(int(draws))]


@dataclass
class EnsembleResult:
    """Aggregated stability statistics of one seeded scenario ensemble.

    ``count_stats`` summarises the per-``t`` stable-class counts across
    draws; ``t_min_stats`` / ``t_max_stats`` summarise the per-class
    window endpoints across draws (entry ``i`` describes isomorphism
    class ``i`` in canonical census order).  Every stats dict holds
    ``mean``/``std``/``min``/``max`` lists plus a ``quantiles`` mapping
    ``{q: [...]}`` — the output of
    :func:`repro.engine.columnar.ensemble_stats`.
    """

    scenario: str
    n: int
    draws: int
    seed: int
    seeds: List[int]
    ts: List[float]
    #: Per-draw stable counts, ``counts[k][j]`` = draw ``k`` at ``ts[j]``.
    counts: List[List[int]]
    count_stats: Dict[str, object]
    t_min_stats: Dict[str, object]
    t_max_stats: Dict[str, object]
    #: One artifact path per draw when ``save_dir`` was given.
    artifact_paths: Optional[List[str]] = None
    #: Extra family parameters the draws were built with.
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def classes(self) -> int:
        """Number of isomorphism classes summarised per draw."""
        return len(self.t_min_stats["mean"])


def _draw_path(save_dir: str, index: int, seed: int, save_format: str) -> str:
    name = f"draw_{index:04d}_seed{seed}"
    return os.path.join(
        save_dir, f"{name}.npz" if save_format == "npz" else name
    )


def _ensemble_draw(task: Tuple) -> Tuple[List[int], List[float], List[float], Optional[str]]:
    """Pool worker: one seeded draw → (counts row, t_min, t_max, path).

    When the draw's artifact already exists with the exact scenario recipe
    (same name/n/seed/params), it is loaded and queried instead of being
    recomputed — resuming an interrupted ensemble and re-querying a saved
    one are the same code path.
    """
    name, n, seed, params, ts, save_path, save_format = task
    scenario = build_scenario(name, n, seed=seed, **params)
    store = None
    if save_path is not None and os.path.exists(save_path):
        try:
            candidate = WeightedStore.load(save_path)
        except LOAD_ERRORS:
            candidate = None  # unreadable/foreign artifact: recompute
        if candidate is not None and candidate.scenario_params == scenario.params:
            store = candidate
    if store is None:
        store = WeightedStore.from_scenario(scenario)
        if save_path is not None:
            store.save(save_path, format=save_format)
    counts = store.stable_counts(ts)
    t_min, t_max = store.stability_windows()
    return counts, t_min.tolist(), t_max.tolist(), save_path


def run_ensemble(
    scenario: str = "random_weights",
    n: int = 6,
    draws: int = 8,
    seed: int = 0,
    ts: Optional[Sequence[float]] = None,
    grid: int = 12,
    jobs: Optional[int] = None,
    save_dir: Optional[str] = None,
    save_format: str = "npz",
    params: Optional[Dict[str, object]] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> EnsembleResult:
    """Sweep ``draws`` seeded instances of a scenario and aggregate.

    Draw ``k`` plays the registered ``scenario`` on ``n`` players with seed
    ``seed + k`` (extra factory ``params`` — e.g. ``low``/``high`` for
    ``random_weights`` — are passed through and recorded in every
    artifact's recipe).  The per-draw work fans out over ``jobs`` pool
    workers; results are identical for any worker count.  ``ts`` defaults
    to the scenario library's log-spaced ``grid``-point scale grid.

    With ``save_dir``, each draw persists one :class:`WeightedStore`
    artifact there (``save_format`` ``"npz"`` or ``"dir"``) and matching
    artifacts already on disk are loaded instead of recomputed.
    """
    if not weighted_store_available():
        raise RuntimeError(
            "the ensemble runner requires NumPy (it aggregates weighted "
            "store columns); install numpy or sweep draws one at a time "
            "with weighted_python_sweep_bcg"
        )
    import numpy as np

    params = dict(params or {})
    for reserved in ("name", "n", "seed"):
        params.pop(reserved, None)
    ts = (
        default_t_grid(n, grid) if ts is None else [float(t) for t in ts]
    )
    seeds = ensemble_seeds(seed, draws)
    if save_dir is not None:
        if save_format not in ("npz", "dir"):
            raise ValueError("save_format must be 'npz' or 'dir'")
        os.makedirs(save_dir, exist_ok=True)
    tasks = [
        (
            scenario,
            int(n),
            draw_seed,
            params,
            ts,
            None
            if save_dir is None
            else _draw_path(save_dir, index, draw_seed, save_format),
            save_format,
        )
        for index, draw_seed in enumerate(seeds)
    ]
    results = parallel_map(_ensemble_draw, tasks, jobs=jobs)

    counts = [row for row, _, _, _ in results]
    paths = [path for _, _, _, path in results]

    def stacked(rows: List[List[float]]) -> Dict[str, object]:
        lengths = [len(row) for row in rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(np.asarray(lengths, dtype=np.int64), out=indptr[1:])
        values = np.asarray(
            [value for row in rows for value in row], dtype=np.float64
        )
        return ensemble_stats(values, indptr, quantiles=quantiles)

    return EnsembleResult(
        scenario=scenario,
        n=int(n),
        draws=int(draws),
        seed=int(seed),
        seeds=seeds,
        ts=list(ts),
        counts=[[int(c) for c in row] for row in counts],
        count_stats=stacked(counts),
        t_min_stats=stacked([t_min for _, t_min, _, _ in results]),
        t_max_stats=stacked([t_max for _, _, t_max, _ in results]),
        artifact_paths=paths if save_dir is not None else None,
        params=params,
    )
