"""Census, sweep, sampling, persistence and reporting utilities.

Record censuses and their columnar store, weighted sweeps with the scenario
library, persistent weighted artifacts (:mod:`.weighted_store`), seeded
scenario ensembles (:mod:`.ensembles`), grid helpers, sampling and the
plain-text report renderers.
"""

from .census import (
    EquilibriumCensus,
    GraphRecord,
    cached_census,
    clear_census_cache,
)
from .improvement import (
    ImprovementGraph,
    StochasticStabilityResult,
    build_improvement_graph,
    graph_to_mask,
    mask_to_graph,
    myopic_move,
    perturbed_transition_matrix,
    stationary_distribution,
    stochastic_stability_analysis,
)
from .figure_series import (
    FigureData,
    FigureSeries,
    SeriesPoint,
    census_figure_series,
    sampled_figure_series,
)
from .report import (
    format_ascii_series,
    format_figure,
    format_store_summary,
    format_table,
)
from .store import (
    CensusStore,
    bcg_alpha_columns,
    cached_store,
    clear_store_cache,
    store_available,
)
from .sampling import (
    SampledEquilibria,
    deduplicate_up_to_isomorphism,
    sample_equilibria_at_cost,
    sample_equilibria_over_grid,
    sampled_bcg_columns,
    sampled_bcg_profiles,
    sampled_stable_counts,
    sampled_stable_mask,
)
from .weighted import (
    WeightedSweepResult,
    weighted_bcg_grid_mask,
    weighted_census,
    weighted_python_sweep_bcg,
    weighted_sweep,
    weighted_t_windows,
    weighted_ucg_grid_mask,
)
from .weighted_store import WeightedStore, weighted_store_available
from .delta_store import (
    DeltaStore,
    cached_delta_store,
    delta_store_available,
)
from .ensembles import (
    EnsembleResult,
    ensemble_seeds,
    run_ensemble,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    available_scenarios,
    build_scenario,
    default_t_grid,
    scenario_from_params,
    scenario_sweep,
)
from .sweeps import (
    aligned_cost_grid,
    aligned_link_costs,
    default_alpha_grid,
    linear_alphas,
    log_spaced_alphas,
    map_over_grid,
    per_edge_cost_axis,
)

__all__ = [
    "ImprovementGraph",
    "StochasticStabilityResult",
    "build_improvement_graph",
    "graph_to_mask",
    "mask_to_graph",
    "myopic_move",
    "perturbed_transition_matrix",
    "stationary_distribution",
    "stochastic_stability_analysis",
    "EquilibriumCensus",
    "GraphRecord",
    "cached_census",
    "clear_census_cache",
    "CensusStore",
    "bcg_alpha_columns",
    "cached_store",
    "clear_store_cache",
    "store_available",
    "FigureData",
    "FigureSeries",
    "SeriesPoint",
    "census_figure_series",
    "sampled_figure_series",
    "format_table",
    "format_figure",
    "format_store_summary",
    "format_ascii_series",
    "SampledEquilibria",
    "deduplicate_up_to_isomorphism",
    "sample_equilibria_at_cost",
    "sample_equilibria_over_grid",
    "sampled_bcg_profiles",
    "sampled_bcg_columns",
    "sampled_stable_mask",
    "sampled_stable_counts",
    "WeightedSweepResult",
    "weighted_bcg_grid_mask",
    "weighted_census",
    "weighted_python_sweep_bcg",
    "weighted_sweep",
    "weighted_t_windows",
    "weighted_ucg_grid_mask",
    "WeightedStore",
    "weighted_store_available",
    "DeltaStore",
    "cached_delta_store",
    "delta_store_available",
    "EnsembleResult",
    "ensemble_seeds",
    "run_ensemble",
    "Scenario",
    "SCENARIOS",
    "available_scenarios",
    "build_scenario",
    "default_t_grid",
    "scenario_from_params",
    "scenario_sweep",
    "log_spaced_alphas",
    "linear_alphas",
    "default_alpha_grid",
    "map_over_grid",
    "per_edge_cost_axis",
    "aligned_link_costs",
    "aligned_cost_grid",
]
