"""Census, sweep, sampling and reporting utilities for the empirical study."""

from .census import (
    EquilibriumCensus,
    GraphRecord,
    cached_census,
    clear_census_cache,
)
from .improvement import (
    ImprovementGraph,
    StochasticStabilityResult,
    build_improvement_graph,
    graph_to_mask,
    mask_to_graph,
    myopic_move,
    perturbed_transition_matrix,
    stationary_distribution,
    stochastic_stability_analysis,
)
from .figure_series import (
    FigureData,
    FigureSeries,
    SeriesPoint,
    census_figure_series,
    sampled_figure_series,
)
from .report import (
    format_ascii_series,
    format_figure,
    format_store_summary,
    format_table,
)
from .store import (
    CensusStore,
    bcg_alpha_columns,
    cached_store,
    clear_store_cache,
    store_available,
)
from .sampling import (
    SampledEquilibria,
    deduplicate_up_to_isomorphism,
    sample_equilibria_at_cost,
    sample_equilibria_over_grid,
)
from .sweeps import (
    aligned_cost_grid,
    aligned_link_costs,
    default_alpha_grid,
    linear_alphas,
    log_spaced_alphas,
    map_over_grid,
    per_edge_cost_axis,
)

__all__ = [
    "ImprovementGraph",
    "StochasticStabilityResult",
    "build_improvement_graph",
    "graph_to_mask",
    "mask_to_graph",
    "myopic_move",
    "perturbed_transition_matrix",
    "stationary_distribution",
    "stochastic_stability_analysis",
    "EquilibriumCensus",
    "GraphRecord",
    "cached_census",
    "clear_census_cache",
    "CensusStore",
    "bcg_alpha_columns",
    "cached_store",
    "clear_store_cache",
    "store_available",
    "FigureData",
    "FigureSeries",
    "SeriesPoint",
    "census_figure_series",
    "sampled_figure_series",
    "format_table",
    "format_figure",
    "format_store_summary",
    "format_ascii_series",
    "SampledEquilibria",
    "deduplicate_up_to_isomorphism",
    "sample_equilibria_at_cost",
    "sample_equilibria_over_grid",
    "log_spaced_alphas",
    "linear_alphas",
    "default_alpha_grid",
    "map_over_grid",
    "per_edge_cost_axis",
    "aligned_link_costs",
    "aligned_cost_grid",
]
