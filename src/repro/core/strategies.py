"""Strategy profiles and strategy matrices for the connection games.

Section 2 of the paper: the strategy of player ``i`` is the 0/1 vector
``s_i = (s_ij)_{j != i}`` where ``s_ij = 1`` means "player i seeks contact
with player j".  A full profile is the ``n x n`` matrix ``s`` (diagonal
ignored).  The *linking rule* of the game turns a profile into an undirected
graph:

* UCG:  edge ``{i, j}`` forms when ``s_ij = 1`` **or** ``s_ji = 1``;
* BCG:  edge ``{i, j}`` forms when ``s_ij = 1`` **and** ``s_ji = 1``.

The paper also works with strategy matrices ``Λ_(i,j)`` (all zero except the
entries that create link ``(i, j)``), which we expose as
:func:`edge_strategy_matrix` plus profile addition/subtraction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..graphs import Graph

Edge = Tuple[int, int]


class StrategyProfile:
    """An immutable strategy profile for an ``n``-player connection game.

    Parameters
    ----------
    n:
        Number of players.
    requests:
        ``requests[i]`` is the set of players that player ``i`` seeks contact
        with (``s_ij = 1``).  Self-requests are rejected.
    """

    __slots__ = ("_n", "_requests")

    def __init__(self, n: int, requests: Optional[Sequence[Iterable[int]]] = None) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._n = n
        rows: List[FrozenSet[int]] = []
        requests = requests if requests is not None else [()] * n
        if len(requests) != n:
            raise ValueError("requests must have one entry per player")
        for i, row in enumerate(requests):
            row_set = frozenset(int(j) for j in row)
            if i in row_set:
                raise ValueError(f"player {i} cannot request a link to itself")
            if any(j < 0 or j >= n for j in row_set):
                raise ValueError(f"player {i} requests an out-of-range player")
            rows.append(row_set)
        self._requests: Tuple[FrozenSet[int], ...] = tuple(rows)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of players."""
        return self._n

    def requests_of(self, player: int) -> FrozenSet[int]:
        """The set of players that ``player`` seeks contact with."""
        return self._requests[player]

    def seeks(self, i: int, j: int) -> bool:
        """Whether ``s_ij = 1``."""
        return j in self._requests[i]

    def num_requests(self, player: int) -> int:
        """``|s_i|``: the number of links player ``i`` provisions for."""
        return len(self._requests[player])

    def as_matrix(self) -> List[List[int]]:
        """The dense 0/1 strategy matrix (diagonal entries are 0)."""
        matrix = [[0] * self._n for _ in range(self._n)]
        for i, row in enumerate(self._requests):
            for j in row:
                matrix[i][j] = 1
        return matrix

    # ------------------------------------------------------------------ #
    # Linking rules
    # ------------------------------------------------------------------ #

    def unilateral_graph(self) -> Graph:
        """The graph formed under the UCG linking rule (``s_ij ∨ s_ji``)."""
        edges = set()
        for i, row in enumerate(self._requests):
            for j in row:
                edges.add((min(i, j), max(i, j)))
        return Graph(self._n, edges)

    def bilateral_graph(self) -> Graph:
        """The graph formed under the BCG linking rule (``s_ij ∧ s_ji``)."""
        edges = [
            (i, j)
            for i, row in enumerate(self._requests)
            for j in row
            if j > i and i in self._requests[j]
        ]
        return Graph(self._n, edges)

    # ------------------------------------------------------------------ #
    # Profile algebra (the paper's ``s + Λ_B`` / ``s - Λ_B``)
    # ------------------------------------------------------------------ #

    def with_request(self, i: int, j: int) -> "StrategyProfile":
        """A copy with ``s_ij`` set to 1."""
        rows = [set(r) for r in self._requests]
        rows[i].add(j)
        return StrategyProfile(self._n, rows)

    def without_request(self, i: int, j: int) -> "StrategyProfile":
        """A copy with ``s_ij`` set to 0."""
        rows = [set(r) for r in self._requests]
        rows[i].discard(j)
        return StrategyProfile(self._n, rows)

    def with_player_strategy(self, i: int, requests: Iterable[int]) -> "StrategyProfile":
        """A copy in which player ``i`` unilaterally deviates to ``requests``."""
        rows = [set(r) for r in self._requests]
        rows[i] = set(requests)
        return StrategyProfile(self._n, rows)

    def add_bilateral_link(self, i: int, j: int) -> "StrategyProfile":
        """``s + Λ_(i,j)`` in the BCG: both ``s_ij`` and ``s_ji`` set to 1."""
        rows = [set(r) for r in self._requests]
        rows[i].add(j)
        rows[j].add(i)
        return StrategyProfile(self._n, rows)

    def remove_bilateral_link(self, i: int, j: int) -> "StrategyProfile":
        """``s - Λ_(i,j)`` in the BCG: both ``s_ij`` and ``s_ji`` set to 0."""
        rows = [set(r) for r in self._requests]
        rows[i].discard(j)
        rows[j].discard(i)
        return StrategyProfile(self._n, rows)

    def add_links(self, edges: Iterable[Edge], bilateral: bool = True) -> "StrategyProfile":
        """``s + Λ_B`` for an edge set ``B``."""
        rows = [set(r) for r in self._requests]
        for i, j in edges:
            rows[i].add(j)
            if bilateral:
                rows[j].add(i)
        return StrategyProfile(self._n, rows)

    def remove_links(self, edges: Iterable[Edge], bilateral: bool = True) -> "StrategyProfile":
        """``s - Λ_B`` for an edge set ``B``."""
        rows = [set(r) for r in self._requests]
        for i, j in edges:
            rows[i].discard(j)
            if bilateral:
                rows[j].discard(i)
        return StrategyProfile(self._n, rows)

    # ------------------------------------------------------------------ #
    # Equality / repr
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self._n == other._n and self._requests == other._requests

    def __hash__(self) -> int:
        return hash((self._n, self._requests))

    def __repr__(self) -> str:
        total = sum(len(r) for r in self._requests)
        return f"StrategyProfile(n={self._n}, requests={total})"


def edge_strategy_matrix(n: int, i: int, j: int, bilateral: bool = True) -> StrategyProfile:
    """The paper's ``Λ_(i,j)`` as a standalone profile.

    In the BCG, ``Λ_(i,j)`` has ``λ_ij = λ_ji = 1``; in the UCG only
    ``λ_ij = 1``.
    """
    rows: List[set] = [set() for _ in range(n)]
    rows[i].add(j)
    if bilateral:
        rows[j].add(i)
    return StrategyProfile(n, rows)


def profile_from_graph_bcg(graph: Graph) -> StrategyProfile:
    """The natural profile supporting ``graph`` in the BCG.

    Every edge is requested by both endpoints and nothing else is requested;
    this is the minimal-cost profile whose bilateral graph is ``graph``.
    """
    rows: List[set] = [set() for _ in range(graph.n)]
    for u, v in graph.edges:
        rows[u].add(v)
        rows[v].add(u)
    return StrategyProfile(graph.n, rows)


def profile_from_ownership_ucg(graph: Graph, owner: Dict[Edge, int]) -> StrategyProfile:
    """A UCG profile in which each edge is requested only by its ``owner``.

    Parameters
    ----------
    graph:
        The target graph.
    owner:
        Maps each edge ``(u, v)`` with ``u < v`` to the endpoint that buys it.

    Raises
    ------
    ValueError
        If an edge has no owner or the owner is not an endpoint.
    """
    rows: List[set] = [set() for _ in range(graph.n)]
    for edge in graph.sorted_edges():
        if edge not in owner:
            raise ValueError(f"edge {edge} has no owner")
        u, v = edge
        buyer = owner[edge]
        if buyer == u:
            rows[u].add(v)
        elif buyer == v:
            rows[v].add(u)
        else:
            raise ValueError(f"owner of edge {edge} must be one of its endpoints")
    return StrategyProfile(graph.n, rows)


def empty_profile(n: int) -> StrategyProfile:
    """The all-zero profile (every player requests nothing)."""
    return StrategyProfile(n)
