"""Link-deviation analysis and α-intervals for network stability.

Pairwise stability (Definition 3 of the paper) is an edge-by-edge condition,
so for a fixed graph the set of link costs ``α`` at which the graph is stable
can be derived from two families of numbers:

* for every edge ``(i, j)`` and endpoint ``i``: the *removal increase*
  ``Σ_k d_(i,k)(G - ij) - Σ_k d_(i,k)(G)`` (how much worse ``i``'s distance
  cost gets when the edge is severed);
* for every non-edge ``(i, j)`` and endpoint ``i``: the *addition saving*
  ``Σ_k d_(i,k)(G) - Σ_k d_(i,k)(G + ij)`` (how much better ``i``'s distance
  cost gets when the edge is created).

The proof of Lemma 2 expresses stability via ``α_min`` (the largest saving of
any *least-interested* endpoint of a missing link) and ``α_max`` (the smallest
removal increase over present links): the graph is pairwise stable for
``α ∈ (α_min, α_max]``.  :class:`PairwiseStabilityProfile` stores the raw
deviation numbers so that exact stability can be decided for *any* α in
``O(n²)`` comparisons without re-running BFS, which is what makes the
exhaustive censuses of Section 5 affordable.

The same style of precomputation is used for the UCG: a graph is
Nash-supportable at the link costs in a finite union of closed intervals
(:class:`AlphaIntervalSet`), computed once per graph by
:func:`repro.core.unilateral.ucg_nash_alpha_set`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import DistanceOracle, get_default_oracle
from ..engine.oracle import distance_delta
from ..graphs import Graph, INFINITY

Edge = Tuple[int, int]
EndpointKey = Tuple[Edge, int]


# --------------------------------------------------------------------------- #
# Closed-interval arithmetic (used by the UCG Nash α-set computation)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AlphaInterval:
    """A closed interval ``[lo, hi]`` of link costs (possibly unbounded above)."""

    lo: float
    hi: float

    def is_empty(self) -> bool:
        """Whether the interval contains no link cost."""
        return self.lo > self.hi

    def contains(self, alpha: float, tol: float = 1e-9) -> bool:
        """Whether ``alpha`` lies in the interval (with tolerance)."""
        return self.lo - tol <= alpha <= self.hi + tol

    def intersect(self, other: "AlphaInterval") -> "AlphaInterval":
        """Intersection of two closed intervals."""
        return AlphaInterval(max(self.lo, other.lo), min(self.hi, other.hi))


#: The full range of admissible link costs (the paper assumes ``α > 0``).
FULL_ALPHA_RANGE = AlphaInterval(0.0, INFINITY)


class AlphaIntervalSet:
    """A finite union of closed α-intervals, kept merged and sorted."""

    def __init__(self, intervals: Sequence[AlphaInterval] = ()) -> None:
        self._intervals: List[AlphaInterval] = _merge_intervals(
            [iv for iv in intervals if not iv.is_empty()]
        )

    @property
    def intervals(self) -> List[AlphaInterval]:
        """The merged, sorted component intervals."""
        return list(self._intervals)

    def is_empty(self) -> bool:
        """Whether no link cost is in the set."""
        return not self._intervals

    def contains(self, alpha: float, tol: float = 1e-9) -> bool:
        """Whether ``alpha`` is in the union (with tolerance)."""
        return any(iv.contains(alpha, tol) for iv in self._intervals)

    def add(self, interval: AlphaInterval) -> None:
        """Add an interval to the union (re-merging)."""
        if interval.is_empty():
            return
        self._intervals = _merge_intervals(self._intervals + [interval])

    def min_alpha(self) -> Optional[float]:
        """Smallest link cost in the set, or ``None`` when empty."""
        return self._intervals[0].lo if self._intervals else None

    def max_alpha(self) -> Optional[float]:
        """Largest link cost in the set (possibly ``inf``), or ``None`` when empty."""
        return self._intervals[-1].hi if self._intervals else None

    def __repr__(self) -> str:
        parts = ", ".join(f"[{iv.lo:g}, {iv.hi:g}]" for iv in self._intervals)
        return f"AlphaIntervalSet({parts})"


def _merge_intervals(intervals: Sequence[AlphaInterval]) -> List[AlphaInterval]:
    """Merge overlapping or touching closed intervals."""
    ordered = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    merged: List[AlphaInterval] = []
    for interval in ordered:
        if merged and interval.lo <= merged[-1].hi + 1e-12:
            last = merged[-1]
            merged[-1] = AlphaInterval(last.lo, max(last.hi, interval.hi))
        else:
            merged.append(interval)
    return merged


# --------------------------------------------------------------------------- #
# Pairwise stability (BCG)
# --------------------------------------------------------------------------- #


@dataclass
class PairwiseStabilityProfile:
    """All single-link deviation payoffs of a graph in the BCG.

    Attributes
    ----------
    graph:
        The analysed graph.
    removal_increase:
        ``removal_increase[((u, v), w)]`` is the increase in vertex ``w``'s
        distance cost when edge ``(u, v)`` is severed (``w`` an endpoint).
    addition_saving:
        ``addition_saving[((u, v), w)]`` is the decrease in vertex ``w``'s
        distance cost when non-edge ``(u, v)`` is created (``w`` an endpoint).
    """

    graph: Graph
    removal_increase: Dict[EndpointKey, float] = field(default_factory=dict)
    addition_saving: Dict[EndpointKey, float] = field(default_factory=dict)
    #: Memo for :attr:`alpha_min` (``None`` until first access).  The census
    #: paths read ``alpha_min`` once per α-grid point, and the uncached
    #: property re-walked every non-edge plus two dict lookups per call.
    _alpha_min_cache: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- Lemma 2 interval -------------------------------------------------- #

    @property
    def alpha_max(self) -> float:
        """``α_max``: smallest removal increase over all (edge, endpoint) pairs.

        For any ``α`` above this value some player strictly prefers to sever a
        link unilaterally.  Equals ``inf`` for graphs with no edges.
        """
        if not self.removal_increase:
            return INFINITY
        return min(self.removal_increase.values())

    @property
    def alpha_min(self) -> float:
        """``α_min``: largest saving of a least-interested endpoint of a non-edge.

        For any ``α`` strictly below this value some missing link would be
        added bilaterally.  Equals ``0`` for complete graphs, ``inf`` for
        disconnected graphs (a cross-component link always pays off).

        The value is computed once and memoised: the deviation tables are
        treated as frozen after construction (mutating them later does *not*
        refresh an already-read ``alpha_min`` — the test suite pins this
        contract down explicitly).
        """
        if self._alpha_min_cache is None:
            best = 0.0
            for (u, v) in self.graph.non_edges():
                save_u = self.addition_saving[((u, v), u)]
                save_v = self.addition_saving[((u, v), v)]
                best = max(best, min(save_u, save_v))
            self._alpha_min_cache = best
        return self._alpha_min_cache

    def stability_interval(self) -> Tuple[float, float]:
        """The Lemma 2 interval ``(α_min, α_max]`` as a tuple."""
        return (self.alpha_min, self.alpha_max)

    # -- Exact Definition 3 checks ----------------------------------------- #

    def is_stable_at(self, alpha: float) -> bool:
        """Exact pairwise stability (Definition 3) at link cost ``alpha``."""
        return not self.violations_at(alpha)

    def violations_at(self, alpha: float) -> List[str]:
        """Human-readable list of Definition 3 violations at ``alpha``."""
        violations: List[str] = []
        for (u, v) in self.graph.sorted_edges():
            for endpoint in (u, v):
                if self.removal_increase[((u, v), endpoint)] < alpha - 1e-12:
                    violations.append(
                        f"player {endpoint} strictly gains by severing edge ({u}, {v})"
                    )
        for (u, v) in self.graph.non_edges():
            save_u = self.addition_saving[((u, v), u)]
            save_v = self.addition_saving[((u, v), v)]
            lo, hi = min(save_u, save_v), max(save_u, save_v)
            # Violation of Definition 3: one endpoint strictly gains and the
            # other at least weakly gains from adding the missing link.
            if hi > alpha + 1e-12 and lo >= alpha - 1e-12:
                violations.append(
                    f"players {u} and {v} would bilaterally add missing edge ({u}, {v})"
                )
        return violations


def pairwise_stability_profile(
    graph: Graph, oracle: Optional[DistanceOracle] = None
) -> PairwiseStabilityProfile:
    """Compute all single-link deviation payoffs of ``graph`` (BCG view).

    All distance work is delegated to a :class:`repro.engine.DistanceOracle`
    (the shared default when ``oracle`` is not given): edge removals cost one
    incremental single-source BFS each, edge additions are answered from the
    cached endpoint distance vectors with no BFS at all.  Every subsequent
    stability query at any ``α`` is then a cheap comparison pass.
    """
    if oracle is None:
        oracle = get_default_oracle()
    removal, addition = oracle.stability_deltas(graph)
    return PairwiseStabilityProfile(
        graph=graph,
        removal_increase=removal,
        addition_saving=addition,
    )


def pairwise_stability_interval(
    graph: Graph, oracle: Optional[DistanceOracle] = None
) -> Tuple[float, float]:
    """The Lemma 2 interval ``(α_min, α_max]`` for ``graph``.

    The graph is pairwise stable for every ``α`` strictly above ``α_min`` and
    at most ``α_max``; the interval is empty (``α_min >= α_max``) when no link
    cost stabilises the graph.
    """
    return pairwise_stability_profile(graph, oracle=oracle).stability_interval()


def has_stabilizing_alpha(
    graph: Graph, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Whether some link cost ``α > 0`` makes ``graph`` pairwise stable."""
    alpha_min, alpha_max = pairwise_stability_interval(graph, oracle=oracle)
    return alpha_min < alpha_max
