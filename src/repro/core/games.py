"""High-level game objects for the two connection games.

:class:`BilateralConnectionGame` and :class:`UnilateralConnectionGame` bundle
the number of players and the link cost ``α`` with the linking rule, cost
functions, equilibrium tests and efficiency quantities, providing the main
object-oriented entry point of the library (the underlying functions are all
available in their own modules for functional use).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional

from ..graphs import Graph
from .anarchy import average_price_of_anarchy, price_of_anarchy, worst_case_price_of_anarchy
from .bilateral import (
    is_nash_profile_bcg,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_stability_violations,
)
from .costs import (
    player_cost_bcg,
    player_cost_ucg,
    social_cost_bcg,
    social_cost_ucg,
)
from .efficiency import efficient_graph, efficient_social_cost
from .stability_intervals import pairwise_stability_interval
from .strategies import StrategyProfile
from .unilateral import (
    is_nash_graph_ucg,
    is_nash_profile_ucg,
    nash_supporting_ownership,
    ucg_nash_alpha_set,
)


class ConnectionGame(ABC):
    """Common interface of the two connection games.

    Parameters
    ----------
    n:
        Number of players.
    alpha:
        Link cost ``α > 0``.
    """

    #: Short name used by reports ("bcg" or "ucg").
    name: str = "connection-game"

    def __init__(self, n: int, alpha: float) -> None:
        if n < 1:
            raise ValueError("a connection game needs at least one player")
        if alpha <= 0:
            raise ValueError("the paper assumes a strictly positive link cost α")
        self.n = n
        self.alpha = alpha

    # -- linking rule and costs ------------------------------------------- #

    @abstractmethod
    def resulting_graph(self, profile: StrategyProfile) -> Graph:
        """The network formed by ``profile`` under this game's linking rule."""

    @abstractmethod
    def player_cost(self, profile: StrategyProfile, player: int) -> float:
        """Cost (eq. (1)) of ``player`` under ``profile``."""

    @abstractmethod
    def social_cost(self, graph: Graph) -> float:
        """Social cost of an equilibrium-style network of this game."""

    # -- equilibrium tests -------------------------------------------------- #

    @abstractmethod
    def is_nash(self, profile: StrategyProfile) -> bool:
        """Whether ``profile`` is a pure Nash equilibrium (Definition 1)."""

    @abstractmethod
    def is_equilibrium_network(self, graph: Graph) -> bool:
        """Whether ``graph`` is a stable outcome under this game's solution concept.

        Nash network for the UCG, pairwise-stable network for the BCG — the
        solution concepts the paper uses when comparing the two games.
        """

    # -- efficiency and price of anarchy ------------------------------------ #

    def efficient_graph(self) -> Graph:
        """The efficient (social-cost-minimising) network."""
        return efficient_graph(self.n, self.alpha, self.name)

    def efficient_social_cost(self) -> float:
        """Social cost of the efficient network."""
        return efficient_social_cost(self.n, self.alpha, self.name)

    def price_of_anarchy(self, graph: Graph) -> float:
        """``ρ(G)`` of one network."""
        return price_of_anarchy(graph, self.alpha, self.name)

    def worst_case_price_of_anarchy(self, equilibria: Iterable[Graph]) -> float:
        """The game's price of anarchy over an explicit equilibrium set."""
        return worst_case_price_of_anarchy(equilibria, self.alpha, self.name)

    def average_price_of_anarchy(self, equilibria: Iterable[Graph]) -> float:
        """The Figure 2 quantity over an explicit equilibrium set."""
        return average_price_of_anarchy(equilibria, self.alpha, self.name)

    def equilibrium_networks(self, graphs: Iterable[Graph]) -> List[Graph]:
        """Filter ``graphs`` down to this game's equilibrium networks."""
        return [g for g in graphs if self.is_equilibrium_network(g)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, alpha={self.alpha})"


class BilateralConnectionGame(ConnectionGame):
    """The paper's bilateral connection game (consent + two-sided link costs)."""

    name = "bcg"

    def resulting_graph(self, profile: StrategyProfile) -> Graph:
        return profile.bilateral_graph()

    def player_cost(self, profile: StrategyProfile, player: int) -> float:
        return player_cost_bcg(profile, player, self.alpha)

    def social_cost(self, graph: Graph) -> float:
        return social_cost_bcg(graph, self.alpha)

    def is_nash(self, profile: StrategyProfile) -> bool:
        return is_nash_profile_bcg(profile, self.alpha)

    def is_equilibrium_network(self, graph: Graph) -> bool:
        return self.is_pairwise_stable(graph)

    # -- BCG-specific notions ----------------------------------------------- #

    def is_pairwise_stable(self, graph: Graph) -> bool:
        """Definition 3 at this game's link cost."""
        return is_pairwise_stable(graph, self.alpha)

    def is_pairwise_nash(self, graph: Graph) -> bool:
        """Definition 2 at this game's link cost."""
        return is_pairwise_nash(graph, self.alpha)

    def stability_violations(self, graph: Graph) -> List[str]:
        """Human-readable pairwise-stability violations at this link cost."""
        return pairwise_stability_violations(graph, self.alpha)

    @staticmethod
    def stability_interval(graph: Graph):
        """The Lemma 2 interval ``(α_min, α_max]`` of a graph (α-independent)."""
        return pairwise_stability_interval(graph)


class UnilateralConnectionGame(ConnectionGame):
    """The Fabrikant et al. unilateral connection game used as the baseline."""

    name = "ucg"

    def resulting_graph(self, profile: StrategyProfile) -> Graph:
        return profile.unilateral_graph()

    def player_cost(self, profile: StrategyProfile, player: int) -> float:
        return player_cost_ucg(profile, player, self.alpha)

    def social_cost(self, graph: Graph) -> float:
        return social_cost_ucg(graph, self.alpha)

    def is_nash(self, profile: StrategyProfile) -> bool:
        return is_nash_profile_ucg(profile, self.alpha)

    def is_equilibrium_network(self, graph: Graph) -> bool:
        return self.is_nash_network(graph)

    # -- UCG-specific notions ------------------------------------------------ #

    def is_nash_network(self, graph: Graph) -> bool:
        """Whether some edge-ownership assignment makes ``graph`` a Nash outcome."""
        return is_nash_graph_ucg(graph, self.alpha)

    def nash_supporting_ownership(self, graph: Graph) -> Optional[dict]:
        """An edge-ownership witness for Nash-supportability, or ``None``."""
        return nash_supporting_ownership(graph, self.alpha)

    @staticmethod
    def nash_alpha_set(graph: Graph):
        """All link costs at which ``graph`` is Nash-supportable (α-independent)."""
        return ucg_nash_alpha_set(graph)
