"""Unified façade over the equilibrium concepts of both connection games.

The concrete implementations live in :mod:`repro.core.bilateral` (pairwise
stability, pairwise Nash, BCG Nash profiles) and
:mod:`repro.core.unilateral` (UCG best responses, Nash profiles, Nash
networks).  This module re-exports them under one roof so user code and the
experiments can import every solution concept from a single place.
"""

from .bilateral import (
    best_deviation_delta_bcg,
    is_nash_profile_bcg,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_nash_graphs,
    pairwise_stability_violations,
    pairwise_stable_graphs,
)
from .unilateral import (
    best_response_ucg,
    is_nash_graph_ucg,
    is_nash_profile_ucg,
    nash_graphs_ucg,
    nash_supporting_ownership,
    ownership_best_response_interval,
    ucg_nash_alpha_set,
)

__all__ = [
    # BCG
    "is_pairwise_stable",
    "pairwise_stability_violations",
    "is_pairwise_nash",
    "is_nash_profile_bcg",
    "best_deviation_delta_bcg",
    "pairwise_stable_graphs",
    "pairwise_nash_graphs",
    # UCG
    "best_response_ucg",
    "is_nash_profile_ucg",
    "is_nash_graph_ucg",
    "ucg_nash_alpha_set",
    "ownership_best_response_interval",
    "nash_supporting_ownership",
    "nash_graphs_ucg",
]
