"""Core library: the connection games, their solution concepts and the PoA.

This package implements the paper's primary contribution (the bilateral
connection game and its pairwise-stability analysis) together with the
unilateral baseline game it is compared against.
"""

from .anarchy import (
    PoAComparison,
    average_price_of_anarchy,
    best_case_price_of_anarchy,
    compare_price_of_anarchy,
    poa_series,
    price_of_anarchy,
    worst_case_price_of_anarchy,
)
from .bilateral import (
    best_deviation_delta_bcg,
    is_nash_profile_bcg,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_nash_graphs,
    pairwise_stability_violations,
    pairwise_stable_graphs,
)
from .convexity import (
    cost_convexity_violations,
    is_cost_convex,
    is_cost_convex_for_player,
    is_link_convex,
    link_convexity_gap,
)
from .costs import (
    all_player_costs_bcg,
    all_player_costs_ucg,
    distance_cost,
    player_cost_bcg,
    player_cost_graph,
    player_cost_ucg,
    social_cost_bcg,
    social_cost_lower_bound_bcg,
    social_cost_profile_bcg,
    social_cost_profile_ucg,
    social_cost_ucg,
)
from .dynamics import (
    DynamicsResult,
    best_response_dynamics_ucg,
    pairwise_dynamics_bcg,
    sample_nash_networks_ucg,
    sample_stable_networks_bcg,
)
from .efficiency import (
    complete_graph_social_cost,
    efficiency_threshold,
    efficient_graph,
    efficient_social_cost,
    exhaustive_social_optimum,
    is_efficient,
    social_cost,
    star_social_cost,
)
from .games import BilateralConnectionGame, ConnectionGame, UnilateralConnectionGame
from .proper import (
    ProperEquilibriumCertificate,
    is_certified_proper_equilibrium,
    proper_equilibrium_certificate,
    proposition2_alpha_window,
    proposition2_holds_for,
)
from .stability_intervals import (
    AlphaInterval,
    AlphaIntervalSet,
    FULL_ALPHA_RANGE,
    PairwiseStabilityProfile,
    distance_delta,
    has_stabilizing_alpha,
    pairwise_stability_interval,
    pairwise_stability_profile,
)
from .strategies import (
    StrategyProfile,
    edge_strategy_matrix,
    empty_profile,
    profile_from_graph_bcg,
    profile_from_ownership_ucg,
)
from . import theory
from .transfers import (
    TransferStabilityProfile,
    is_pairwise_stable_with_transfers,
    transfer_stability_interval,
    transfer_stability_profile,
    transfer_stable_graphs,
)
from .unilateral import (
    best_response_ucg,
    is_nash_graph_ucg,
    is_nash_profile_ucg,
    nash_graphs_ucg,
    nash_supporting_ownership,
    ownership_best_response_interval,
    ucg_nash_alpha_set,
)

__all__ = [
    # games
    "ConnectionGame",
    "BilateralConnectionGame",
    "UnilateralConnectionGame",
    # strategies
    "StrategyProfile",
    "edge_strategy_matrix",
    "empty_profile",
    "profile_from_graph_bcg",
    "profile_from_ownership_ucg",
    # costs
    "distance_cost",
    "player_cost_graph",
    "player_cost_bcg",
    "player_cost_ucg",
    "all_player_costs_bcg",
    "all_player_costs_ucg",
    "social_cost_bcg",
    "social_cost_ucg",
    "social_cost_profile_bcg",
    "social_cost_profile_ucg",
    "social_cost_lower_bound_bcg",
    # efficiency
    "social_cost",
    "efficient_graph",
    "efficient_social_cost",
    "efficiency_threshold",
    "complete_graph_social_cost",
    "star_social_cost",
    "is_efficient",
    "exhaustive_social_optimum",
    # equilibrium concepts
    "is_pairwise_stable",
    "pairwise_stability_violations",
    "is_pairwise_nash",
    "is_nash_profile_bcg",
    "best_deviation_delta_bcg",
    "pairwise_stable_graphs",
    "pairwise_nash_graphs",
    "best_response_ucg",
    "is_nash_profile_ucg",
    "is_nash_graph_ucg",
    "ucg_nash_alpha_set",
    "ownership_best_response_interval",
    "nash_supporting_ownership",
    "nash_graphs_ucg",
    # stability intervals
    "AlphaInterval",
    "AlphaIntervalSet",
    "FULL_ALPHA_RANGE",
    "PairwiseStabilityProfile",
    "pairwise_stability_profile",
    "pairwise_stability_interval",
    "has_stabilizing_alpha",
    "distance_delta",
    # convexity
    "is_cost_convex",
    "is_cost_convex_for_player",
    "cost_convexity_violations",
    "is_link_convex",
    "link_convexity_gap",
    # price of anarchy
    "price_of_anarchy",
    "worst_case_price_of_anarchy",
    "average_price_of_anarchy",
    "best_case_price_of_anarchy",
    "compare_price_of_anarchy",
    "PoAComparison",
    "poa_series",
    # dynamics
    "DynamicsResult",
    "best_response_dynamics_ucg",
    "pairwise_dynamics_bcg",
    "sample_stable_networks_bcg",
    "sample_nash_networks_ucg",
    # transfers extension (Section 6 future work)
    "TransferStabilityProfile",
    "transfer_stability_profile",
    "transfer_stability_interval",
    "is_pairwise_stable_with_transfers",
    "transfer_stable_graphs",
    # proper equilibrium (Definition 5 / Lemma 3 / Proposition 2)
    "ProperEquilibriumCertificate",
    "proper_equilibrium_certificate",
    "is_certified_proper_equilibrium",
    "proposition2_alpha_window",
    "proposition2_holds_for",
    # theory oracle
    "theory",
]
