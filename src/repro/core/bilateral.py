"""Equilibrium concepts of the bilateral connection game (BCG).

Implements, directly from the definitions in Section 3 of the paper:

* Nash equilibrium of a BCG strategy profile (Definition 1);
* pairwise Nash equilibrium of a graph (Definition 2) — a supporting Nash
  profile plus no mutually-improving missing link;
* pairwise stability of a graph (Definition 3) — no unilateral profitable
  link severance, no bilateral profitable link addition.

Proposition 1 states that pairwise stability and pairwise Nash coincide in
the BCG; the implementations here are *independent* of each other (pairwise
Nash checks whole-subset deletions, pairwise stability only single links), so
the test suite can verify the proposition computationally.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, List, Optional, Tuple

from ..engine import DistanceOracle, get_default_oracle
from ..graphs import Graph
from .stability_intervals import distance_delta, pairwise_stability_profile
from .strategies import StrategyProfile, profile_from_graph_bcg

Edge = Tuple[int, int]


# --------------------------------------------------------------------------- #
# Pairwise stability (Definition 3)
# --------------------------------------------------------------------------- #


def is_pairwise_stable(
    graph: Graph, alpha: float, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Exact pairwise stability of ``graph`` at link cost ``alpha``.

    A graph is pairwise stable when (a) no endpoint of an existing edge
    strictly gains by severing it unilaterally and (b) no missing link would
    be added — i.e. there is no non-edge whose addition strictly helps one
    endpoint without strictly hurting the other.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    return pairwise_stability_profile(graph, oracle=oracle).is_stable_at(alpha)


def pairwise_stability_violations(
    graph: Graph, alpha: float, oracle: Optional[DistanceOracle] = None
) -> List[str]:
    """Human-readable list of pairwise-stability violations at ``alpha``."""
    return pairwise_stability_profile(graph, oracle=oracle).violations_at(alpha)


# --------------------------------------------------------------------------- #
# Nash equilibrium of a profile (Definition 1, BCG linking rule)
# --------------------------------------------------------------------------- #


def _subsets(items: Iterable[int]) -> Iterable[Tuple[int, ...]]:
    items = list(items)
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))


def _cost_delta(
    profile: StrategyProfile,
    player: int,
    new_requests: Iterable[int],
    alpha: float,
    oracle: Optional[DistanceOracle] = None,
) -> float:
    """Change in ``player``'s cost from unilaterally deviating to ``new_requests``.

    Costs are compared via *deltas* so that the ``∞`` distance convention is
    handled uniformly across the whole library: if the player's distance cost
    is infinite both before and after the deviation, the distance term
    contributes 0 to the delta and only the link-provisioning term ``α·|s_i|``
    matters.  (This is the same convention used by
    :mod:`repro.core.stability_intervals` and keeps pairwise stability and
    pairwise Nash mutually consistent on disconnected graphs.)
    """
    if oracle is None:
        oracle = get_default_oracle()
    new_requests = set(new_requests)
    before_graph = profile.bilateral_graph()
    after_graph = profile.with_player_strategy(player, new_requests).bilateral_graph()
    before_distance = oracle.distance_sum(before_graph, player)
    after_distance = oracle.distance_sum(after_graph, player)
    increase = distance_delta(after_distance, before_distance)
    link_delta = alpha * (len(new_requests) - profile.num_requests(player))
    return increase + link_delta


def best_deviation_delta_bcg(
    profile: StrategyProfile,
    player: int,
    alpha: float,
    oracle: Optional[DistanceOracle] = None,
) -> float:
    """The most negative cost change ``player`` can achieve unilaterally.

    In the BCG a unilateral deviation cannot *create* edges (the other side
    has not consented), so a request towards a non-consenting player is pure
    cost and the only useful deviations keep a subset of the currently
    *reciprocated* requests.  We enumerate those subsets exactly, so the
    returned value is the exact best-response improvement (0 or negative
    means the player is already best-responding, up to dropping wasted
    requests which is handled by the caller).
    """
    if oracle is None:
        oracle = get_default_oracle()
    reciprocated = [
        j for j in profile.requests_of(player) if profile.seeks(j, player)
    ]
    best = 0.0
    for kept in _subsets(reciprocated):
        delta = _cost_delta(profile, player, kept, alpha, oracle=oracle)
        if delta < best:
            best = delta
    return best


def is_nash_profile_bcg(
    profile: StrategyProfile, alpha: float, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Whether ``profile`` is a (pure) Nash equilibrium of the BCG.

    A player with an unreciprocated request can always drop it and save ``α``,
    so such profiles are never Nash; otherwise the player's exact best
    response keeps some subset of its reciprocated links, which is enumerated
    exhaustively.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    if oracle is None:
        oracle = get_default_oracle()
    for player in range(profile.n):
        wasted = [
            j for j in profile.requests_of(player) if not profile.seeks(j, player)
        ]
        if wasted:
            return False
        if best_deviation_delta_bcg(profile, player, alpha, oracle=oracle) < -1e-12:
            return False
    return True


# --------------------------------------------------------------------------- #
# Pairwise Nash equilibrium (Definition 2)
# --------------------------------------------------------------------------- #


def is_pairwise_nash(
    graph: Graph, alpha: float, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Whether ``graph`` is a pairwise Nash equilibrium network of the BCG.

    Uses the natural supporting profile in which exactly the edges of the
    graph are mutually requested; the graph is pairwise Nash when that profile
    is a Nash equilibrium (no player gains by dropping *any subset* of its
    links) and no missing link is mutually (weakly/strictly) beneficial.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    if oracle is None:
        oracle = get_default_oracle()
    profile = profile_from_graph_bcg(graph)
    if not is_nash_profile_bcg(profile, alpha, oracle=oracle):
        return False
    return not _has_mutually_improving_link(graph, alpha, oracle=oracle)


def _has_mutually_improving_link(
    graph: Graph, alpha: float, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Whether some missing link strictly helps one endpoint and weakly helps the other."""
    if oracle is None:
        oracle = get_default_oracle()
    for (u, v) in graph.non_edges():
        delta_u = oracle.addition_saving(graph, (u, v), u)
        delta_v = oracle.addition_saving(graph, (u, v), v)
        save_u = delta_u - alpha
        save_v = delta_v - alpha
        # Definition 2: violated when c_u decreases strictly while c_v does
        # not increase (or vice versa).
        if (save_u > 1e-12 and save_v >= -1e-12) or (
            save_v > 1e-12 and save_u >= -1e-12
        ):
            return True
    return False


def pairwise_nash_graphs(
    graphs: Iterable[Graph], alpha: float, oracle: Optional[DistanceOracle] = None
) -> List[Graph]:
    """Filter an iterable of graphs down to the pairwise Nash networks at ``alpha``."""
    if oracle is None:
        oracle = get_default_oracle()
    return [g for g in graphs if is_pairwise_nash(g, alpha, oracle=oracle)]


def pairwise_stable_graphs(
    graphs: Iterable[Graph], alpha: float, oracle: Optional[DistanceOracle] = None
) -> List[Graph]:
    """Filter an iterable of graphs down to the pairwise stable networks at ``alpha``."""
    if oracle is None:
        oracle = get_default_oracle()
    return [g for g in graphs if is_pairwise_stable(g, alpha, oracle=oracle)]
