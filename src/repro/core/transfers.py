"""Pairwise stability with transfers (the paper's Section 6 extension).

The conclusion of the paper raises the question of whether *bilateral
transfers between players can mediate the price of anarchy* of the connection
game.  The standard formalisation (Jackson & Wolinsky's "pairwise stability
with transfers", also called pairwise stability with side payments) changes
the link-level test from individual rationality to *joint* rationality:

* an existing link ``(i, j)`` is kept only if severing it does not lower the
  endpoints' **combined** cost (one endpoint may compensate the other for
  keeping a privately unattractive link);
* a missing link ``(i, j)`` is added whenever doing so lowers the endpoints'
  combined cost (the gainer can pay the loser).

Because decisions are made on the sum of the two endpoints' costs, transfers
internalise the *local* externality of a link; the global externality (other
players also getting closer) is still ignored, so stable-with-transfers
networks need not be efficient — quantifying how much of the price of anarchy
transfers recover is exactly the experiment ``ext_transfers`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..graphs import (
    Graph,
    bfs_distances,
    bfs_distances_with_extra_edge,
    bfs_distances_with_forbidden_edge,
)
from .stability_intervals import distance_delta

Edge = Tuple[int, int]


@dataclass
class TransferStabilityProfile:
    """Joint (two-endpoint) deviation payoffs of a graph under transfers.

    Attributes
    ----------
    graph:
        The analysed graph.
    joint_removal_increase:
        For each edge, the increase in the *sum* of both endpoints' distance
        costs when the edge is severed.
    joint_addition_saving:
        For each non-edge, the decrease in the *sum* of both endpoints'
        distance costs when the edge is created.
    """

    graph: Graph
    joint_removal_increase: dict
    joint_addition_saving: dict

    @property
    def alpha_max(self) -> float:
        """Largest link cost at which no edge is jointly worth severing.

        Severing edge ``(i, j)`` saves the pair ``2α`` in link costs (each
        endpoint stops paying ``α``) and costs them the joint distance
        increase, so the edge survives exactly when ``2α`` is at most that
        increase.
        """
        if not self.joint_removal_increase:
            return float("inf")
        return min(self.joint_removal_increase.values()) / 2.0

    @property
    def alpha_min(self) -> float:
        """Smallest link cost at which no missing edge is jointly worth adding."""
        if not self.joint_addition_saving:
            return 0.0
        return max(self.joint_addition_saving.values()) / 2.0

    def stability_interval(self) -> Tuple[float, float]:
        """The window ``(α_min, α_max]`` of link costs with transfer-stability."""
        return (self.alpha_min, self.alpha_max)

    def is_stable_at(self, alpha: float) -> bool:
        """Exact pairwise stability with transfers at link cost ``alpha``."""
        for increase in self.joint_removal_increase.values():
            # Joint gain from severing = 2α - increase; strict gain is a violation.
            if 2.0 * alpha > increase + 1e-12:
                return False
        for saving in self.joint_addition_saving.values():
            # Joint gain from adding = saving - 2α; strict gain is a violation.
            if saving > 2.0 * alpha + 1e-12:
                return False
        return True


def transfer_stability_profile(graph: Graph) -> TransferStabilityProfile:
    """Compute the joint deviation payoffs of every single-link change."""
    base = [sum(bfs_distances(graph, v)) for v in range(graph.n)]
    removal = {}
    for (u, v) in graph.sorted_edges():
        increase = 0.0
        for endpoint in (u, v):
            without = sum(bfs_distances_with_forbidden_edge(graph, endpoint, (u, v)))
            increase += distance_delta(without, base[endpoint])
        removal[(u, v)] = increase
    addition = {}
    for (u, v) in graph.non_edges():
        saving = 0.0
        for endpoint in (u, v):
            with_edge = sum(bfs_distances_with_extra_edge(graph, endpoint, (u, v)))
            saving += distance_delta(base[endpoint], with_edge)
        addition[(u, v)] = saving
    return TransferStabilityProfile(
        graph=graph,
        joint_removal_increase=removal,
        joint_addition_saving=addition,
    )


def is_pairwise_stable_with_transfers(graph: Graph, alpha: float) -> bool:
    """Whether ``graph`` is pairwise stable with transfers at link cost ``alpha``."""
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    return transfer_stability_profile(graph).is_stable_at(alpha)


def transfer_stability_interval(graph: Graph) -> Tuple[float, float]:
    """The ``(α_min, α_max]`` window of link costs with transfer-stability."""
    return transfer_stability_profile(graph).stability_interval()


def transfer_stable_graphs(graphs: Iterable[Graph], alpha: float) -> List[Graph]:
    """Filter a collection down to the transfer-stable networks at ``alpha``."""
    return [g for g in graphs if is_pairwise_stable_with_transfers(g, alpha)]
