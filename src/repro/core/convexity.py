"""Convexity notions used in Section 3 of the paper.

Two different notions appear:

* **Cost convexity** (Definition 4, established for the BCG by Lemma 1): for
  any subset ``B`` of a player's links, the cost change from dropping the
  whole subset is at least the sum of the cost changes from dropping each
  link individually.  Lemma 1 is what makes pairwise stability equivalent to
  pairwise Nash (Proposition 1): if no single-link severance pays off, no
  multi-link severance does either.

* **Link convexity** (Definition 6): the largest distance saving any endpoint
  of a *missing* link could get from adding it is strictly smaller than the
  smallest distance increase any endpoint of an *existing* link would suffer
  from severing it.  By Lemma 2 this is a sufficient condition for the graph
  to be pairwise stable at some link cost, and by Proposition 2 such graphs
  are achievable as proper equilibria.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, List, Optional, Tuple

from ..graphs import Graph, distance_sum
from .stability_intervals import distance_delta, pairwise_stability_profile

Edge = Tuple[int, int]


def _non_empty_subsets(
    items: List[Edge], max_size: Optional[int] = None
) -> Iterable[Tuple[Edge, ...]]:
    limit = len(items) if max_size is None else min(max_size, len(items))
    return chain.from_iterable(combinations(items, r) for r in range(1, limit + 1))


def cost_convexity_violations(
    graph: Graph, player: int, max_subset_size: Optional[int] = None
) -> List[Tuple[Edge, ...]]:
    """Subsets of ``player``'s links that violate Definition 4 on ``graph``.

    For every subset ``B`` of the player's incident edges the check is

        ``[c_i(s - Λ_B) - c_i(s)]  >=  Σ_{e in B} [c_i(s - Λ_e) - c_i(s)]``

    which, after the ``α`` terms cancel, reduces to the same inequality on
    distance costs.  Lemma 1 asserts the list is always empty; the function
    returns the offending subsets so the property-based tests can report
    counterexamples meaningfully if the implementation ever regressed.
    ``max_subset_size`` truncates the enumeration for high-degree vertices.
    """
    incident = [
        (min(player, j), max(player, j)) for j in sorted(graph.neighbors(player))
    ]
    base = distance_sum(graph, player)
    single_delta = {}
    for edge in incident:
        single_delta[edge] = distance_delta(
            distance_sum(graph.remove_edge(*edge), player), base
        )
    violations: List[Tuple[Edge, ...]] = []
    for subset in _non_empty_subsets(incident, max_subset_size):
        joint = distance_delta(
            distance_sum(graph.remove_edges(subset), player), base
        )
        separate = sum(single_delta[edge] for edge in subset)
        if joint < separate - 1e-9:
            violations.append(subset)
    return violations


def is_cost_convex_for_player(
    graph: Graph, player: int, max_subset_size: Optional[int] = None
) -> bool:
    """Whether Definition 4 holds for ``player`` on ``graph`` (Lemma 1 says yes)."""
    return not cost_convexity_violations(graph, player, max_subset_size)


def is_cost_convex(graph: Graph, max_subset_size: Optional[int] = None) -> bool:
    """Whether Definition 4 holds for every player on ``graph``."""
    return all(
        is_cost_convex_for_player(graph, player, max_subset_size)
        for player in range(graph.n)
    )


def is_link_convex(graph: Graph) -> bool:
    """Definition 6: link convexity of ``graph``.

    For every (ordered) non-edge ``(i, k)`` and every (ordered) edge
    ``(l, m)``, the distance saving to ``i`` from adding ``(i, k)`` must be
    strictly smaller than the distance increase to ``l`` from removing
    ``(l, m)``.  Equivalently: the *largest* addition saving is strictly below
    the *smallest* removal increase.  Disconnected graphs are never link
    convex (a reconnecting link has infinite saving).
    """
    profile = pairwise_stability_profile(graph)
    if profile.addition_saving:
        max_saving = max(profile.addition_saving.values())
    else:
        max_saving = float("-inf")
    if profile.removal_increase:
        min_increase = min(profile.removal_increase.values())
    else:
        min_increase = float("inf")
    return max_saving < min_increase


def link_convexity_gap(graph: Graph) -> Tuple[float, float]:
    """The pair ``(max addition saving, min removal increase)`` of Definition 6.

    The graph is link convex exactly when the first number is strictly less
    than the second; by Lemma 2 the interval between them then contains link
    costs at which the graph is pairwise stable.
    """
    profile = pairwise_stability_profile(graph)
    max_saving = max(profile.addition_saving.values(), default=float("-inf"))
    min_increase = min(profile.removal_increase.values(), default=float("inf"))
    return max_saving, min_increase
