"""Decentralised dynamics that converge to the games' stable networks.

The exhaustive censuses of Section 5 are only feasible for small player
counts, so to reproduce the paper's ten-agent setting we also provide the
natural local dynamics:

* **UCG best-response dynamics** — players take turns replacing their whole
  purchase set by an exact best response;
* **BCG pairwise dynamics** — pairs of players are examined in (random or
  round-robin) order; a missing link is added when it weakly benefits both
  and strictly benefits at least one endpoint, an existing link is severed
  when either endpoint strictly benefits from dropping it.

Fixed points of the first process are Nash networks of the UCG and fixed
points of the second are pairwise-stable networks of the BCG, which the test
suite verifies.  Neither process is guaranteed to converge from every state,
so both report whether they did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import DistanceOracle, get_default_oracle, parallel_map
from ..graphs import Graph, random_connected_graph
from .strategies import StrategyProfile, profile_from_graph_bcg
from .unilateral import best_response_ucg

Edge = Tuple[int, int]


@dataclass
class DynamicsResult:
    """Outcome of a dynamics run.

    Attributes
    ----------
    graph:
        The final network.
    converged:
        Whether a full pass with no change occurred before the iteration
        budget ran out.
    rounds:
        Number of full passes executed.
    profile:
        The final strategy profile (UCG runs carry edge ownership here; BCG
        runs use the canonical mutual-consent profile).
    history:
        Edge counts after each pass, useful for diagnostics and tests.
    """

    graph: Graph
    converged: bool
    rounds: int
    profile: Optional[StrategyProfile] = None
    history: List[int] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# UCG best-response dynamics
# --------------------------------------------------------------------------- #


def best_response_dynamics_ucg(
    n: int,
    alpha: float,
    initial: Optional[StrategyProfile] = None,
    max_rounds: int = 200,
    rng: Optional[random.Random] = None,
    randomize_order: bool = True,
    oracle: Optional[DistanceOracle] = None,
) -> DynamicsResult:
    """Run round-based exact best-response dynamics for the UCG.

    Each round every player (in random or index order) recomputes an exact
    best response to the current purchases of the others.  The process stops
    after a full round with no strategy change, or after ``max_rounds``.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    rng = rng or random.Random()
    if oracle is None:
        oracle = get_default_oracle()
    profile = initial if initial is not None else StrategyProfile(n)
    if profile.n != n:
        raise ValueError("initial profile has the wrong number of players")

    history: List[int] = []
    for round_index in range(max_rounds):
        order = list(range(n))
        if randomize_order:
            rng.shuffle(order)
        changed = False
        for player in order:
            others = profile.with_player_strategy(player, ()).unilateral_graph()
            _, best_set = best_response_ucg(others, player, alpha)
            if best_set != profile.requests_of(player):
                current_cost = alpha * profile.num_requests(player) + oracle.distance_sum(
                    profile.unilateral_graph(), player
                )
                candidate = profile.with_player_strategy(player, best_set)
                candidate_cost = alpha * len(best_set) + oracle.distance_sum(
                    candidate.unilateral_graph(), player
                )
                # Only move on strict improvement so fixed points are exactly
                # the profiles where nobody can strictly gain.
                if candidate_cost < current_cost - 1e-12 or (
                    current_cost == float("inf") and candidate_cost == float("inf")
                    and len(best_set) < profile.num_requests(player)
                ):
                    profile = candidate
                    changed = True
        history.append(profile.unilateral_graph().num_edges)
        if not changed:
            return DynamicsResult(
                graph=profile.unilateral_graph(),
                converged=True,
                rounds=round_index + 1,
                profile=profile,
                history=history,
            )
    return DynamicsResult(
        graph=profile.unilateral_graph(),
        converged=False,
        rounds=max_rounds,
        profile=profile,
        history=history,
    )


# --------------------------------------------------------------------------- #
# BCG pairwise dynamics
# --------------------------------------------------------------------------- #


def _severance_benefit(
    graph: Graph, edge: Edge, endpoint: int, alpha: float, oracle: DistanceOracle
) -> float:
    """Cost decrease for ``endpoint`` from severing ``edge`` (positive = wants to sever)."""
    return alpha - oracle.removal_increase(graph, edge, endpoint)


def _addition_benefit(
    graph: Graph, edge: Edge, endpoint: int, alpha: float, oracle: DistanceOracle
) -> float:
    """Cost decrease for ``endpoint`` from adding missing ``edge`` (positive = gains)."""
    return oracle.addition_saving(graph, edge, endpoint) - alpha


def pairwise_dynamics_bcg(
    n: int,
    alpha: float,
    initial: Optional[Graph] = None,
    max_rounds: int = 200,
    rng: Optional[random.Random] = None,
    randomize_order: bool = True,
    oracle: Optional[DistanceOracle] = None,
) -> DynamicsResult:
    """Run myopic pairwise add/sever dynamics for the BCG.

    Each round scans all vertex pairs (in random or lexicographic order).  A
    missing link is created when one endpoint strictly gains and the other at
    least weakly gains (the Definition 3 addition rule); an existing link is
    severed when either endpoint strictly gains from dropping it.  Fixed
    points are exactly the pairwise-stable networks at ``alpha``.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    rng = rng or random.Random()
    if oracle is None:
        oracle = get_default_oracle()
    graph = initial if initial is not None else Graph(n)
    if graph.n != n:
        raise ValueError("initial graph has the wrong number of vertices")

    history: List[int] = []
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for round_index in range(max_rounds):
        if randomize_order:
            rng.shuffle(pairs)
        changed = False
        for (u, v) in pairs:
            if graph.has_edge(u, v):
                if (
                    _severance_benefit(graph, (u, v), u, alpha, oracle) > 1e-12
                    or _severance_benefit(graph, (u, v), v, alpha, oracle) > 1e-12
                ):
                    graph = graph.remove_edge(u, v)
                    changed = True
            else:
                gain_u = _addition_benefit(graph, (u, v), u, alpha, oracle)
                gain_v = _addition_benefit(graph, (u, v), v, alpha, oracle)
                if (gain_u > 1e-12 and gain_v >= -1e-12) or (
                    gain_v > 1e-12 and gain_u >= -1e-12
                ):
                    graph = graph.add_edge(u, v)
                    changed = True
        history.append(graph.num_edges)
        if not changed:
            return DynamicsResult(
                graph=graph,
                converged=True,
                rounds=round_index + 1,
                profile=profile_from_graph_bcg(graph),
                history=history,
            )
    return DynamicsResult(
        graph=graph,
        converged=False,
        rounds=max_rounds,
        profile=profile_from_graph_bcg(graph),
        history=history,
    )


def _bcg_sample_worker(args: Tuple[int, float, int, int, float, int]) -> Optional[Graph]:
    """One seeded BCG dynamics run (module-level so it pickles for the pool)."""
    n, alpha, seed, index, edge_probability, max_rounds = args
    rng = random.Random(seed * 100003 + index)
    start = random_connected_graph(n, edge_probability, rng)
    outcome = pairwise_dynamics_bcg(
        n, alpha, initial=start, max_rounds=max_rounds, rng=rng
    )
    return outcome.graph if outcome.converged else None


def sample_stable_networks_bcg(
    n: int,
    alpha: float,
    num_samples: int,
    seed: int = 0,
    edge_probability: float = 0.3,
    max_rounds: int = 200,
    jobs: Optional[int] = None,
) -> List[Graph]:
    """Sample pairwise-stable networks by running the dynamics from random starts.

    Used by the sampled (large-``n``) variant of the Figure 2/3 experiments.
    Starting networks are random *connected* graphs: pairwise dynamics only
    adds a missing link when it strictly helps, and from a fragmented network
    a single link cannot reduce an infinite distance cost, so disconnected
    starts would freeze immediately (the empty network is itself pairwise
    stable — the mutual-blocking phenomenon the paper discusses).  Only
    converged runs contribute a network; the same stable topology may be
    reached from several starts, which mimics a crude basin-of-attraction
    weighting.

    Every run is seeded independently from ``(seed, index)``, so fanning the
    runs out over ``jobs`` worker processes returns the exact same networks
    in the exact same order as the serial path.
    """
    tasks = [
        (n, alpha, seed, index, edge_probability, max_rounds)
        for index in range(num_samples)
    ]
    outcomes = parallel_map(_bcg_sample_worker, tasks, jobs=jobs)
    return [graph for graph in outcomes if graph is not None]


def _ucg_sample_worker(args: Tuple[int, float, int, int, int]) -> Optional[Graph]:
    """One seeded UCG dynamics run (module-level so it pickles for the pool)."""
    n, alpha, seed, index, max_rounds = args
    rng = random.Random(seed * 100003 + index)
    requests: List[List[int]] = []
    for player in range(n):
        others = [j for j in range(n) if j != player]
        count = rng.randint(0, min(3, n - 1))
        requests.append(rng.sample(others, count))
    start = StrategyProfile(n, requests)
    outcome = best_response_dynamics_ucg(
        n, alpha, initial=start, max_rounds=max_rounds, rng=rng
    )
    return outcome.graph if outcome.converged else None


def sample_nash_networks_ucg(
    n: int,
    alpha: float,
    num_samples: int,
    seed: int = 0,
    max_rounds: int = 200,
    jobs: Optional[int] = None,
) -> List[Graph]:
    """Sample UCG Nash networks by best-response dynamics from random starts.

    Seeding is per-run, so any ``jobs`` value yields identical results.
    """
    tasks = [(n, alpha, seed, index, max_rounds) for index in range(num_samples)]
    outcomes = parallel_map(_ucg_sample_worker, tasks, jobs=jobs)
    return [graph for graph in outcomes if graph is not None]
