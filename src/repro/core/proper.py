"""Proper-equilibrium achievability (Definition 5, Lemma 3, Proposition 2).

The paper justifies pairwise Nash / pairwise stability as a solution concept
by relating it to Myerson's *proper equilibrium*, a non-cooperative
refinement that requires robustness to small, payoff-ranked trembles and
needs no coordination between players:

* **Lemma 3** (Calvó-Armengol & İlkılıç): a pairwise Nash network in which
  *neither* endpoint of any missing link would consent to adding it
  (``c_i(s + Λ_ij) > c_i(s)`` strictly, for both endpoints) is a proper
  equilibrium at the same link cost.
* **Proposition 2**: a link-convex graph is achievable as a proper
  equilibrium of the BCG for some link cost, because inside the link-convex
  window every missing link is strictly unattractive to both endpoints.

Verifying properness from first principles would require constructing the
sequence of ε-perturbed mixed equilibria; what the experiments need (and what
the paper actually uses) is the *certificate*: pairwise Nash + strict
unprofitability of every missing link.  This module computes that
certificate, plus the Proposition 2 link-cost window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..graphs import Graph
from .bilateral import is_pairwise_nash
from .convexity import is_link_convex, link_convexity_gap
from .stability_intervals import pairwise_stability_profile


@dataclass(frozen=True)
class ProperEquilibriumCertificate:
    """Evidence that a graph satisfies the Lemma 3 sufficient conditions.

    Attributes
    ----------
    graph:
        The candidate network.
    alpha:
        The link cost at which the certificate was evaluated.
    is_pairwise_nash:
        Whether the graph is a pairwise Nash network at ``alpha``.
    missing_links_strictly_unprofitable:
        Whether every missing link would strictly increase the cost of *both*
        endpoints if added (the extra hypothesis of Lemma 3).
    """

    graph: Graph
    alpha: float
    is_pairwise_nash: bool
    missing_links_strictly_unprofitable: bool

    @property
    def certifies_proper_equilibrium(self) -> bool:
        """Whether the Lemma 3 sufficient conditions hold."""
        return self.is_pairwise_nash and self.missing_links_strictly_unprofitable


def _all_missing_links_strictly_unprofitable(graph: Graph, alpha: float) -> bool:
    """Whether adding any missing link strictly hurts both endpoints.

    Adding non-edge ``(i, j)`` changes endpoint ``i``'s cost by
    ``α - saving_i``; strict unprofitability for both endpoints means the
    saving of *each* endpoint is strictly below ``α``.
    """
    profile = pairwise_stability_profile(graph)
    for (u, v) in graph.non_edges():
        for endpoint in (u, v):
            if profile.addition_saving[((u, v), endpoint)] >= alpha - 1e-12:
                return False
    return True


def proper_equilibrium_certificate(graph: Graph, alpha: float) -> ProperEquilibriumCertificate:
    """Evaluate the Lemma 3 sufficient conditions at link cost ``alpha``."""
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    return ProperEquilibriumCertificate(
        graph=graph,
        alpha=alpha,
        is_pairwise_nash=is_pairwise_nash(graph, alpha),
        missing_links_strictly_unprofitable=_all_missing_links_strictly_unprofitable(
            graph, alpha
        ),
    )


def is_certified_proper_equilibrium(graph: Graph, alpha: float) -> bool:
    """Whether the Lemma 3 certificate holds for ``graph`` at ``alpha``."""
    return proper_equilibrium_certificate(graph, alpha).certifies_proper_equilibrium


def proposition2_alpha_window(graph: Graph) -> Optional[Tuple[float, float]]:
    """The Proposition 2 link-cost window for a link-convex graph.

    For a link-convex graph every ``α`` strictly between the largest addition
    saving and the smallest removal increase makes all missing links strictly
    unattractive to both endpoints while no existing link is worth severing —
    the certificate of Lemma 3.  Returns ``None`` when the graph is not link
    convex (Proposition 2 is silent about such graphs).
    """
    if not is_link_convex(graph):
        return None
    max_saving, min_increase = link_convexity_gap(graph)
    lower = max(max_saving, 0.0)
    return (lower, min_increase)


def proposition2_holds_for(graph: Graph) -> bool:
    """Check Proposition 2 computationally for one graph.

    If the graph is link convex, there must exist a link cost at which the
    Lemma 3 certificate (and hence proper-equilibrium achievability) holds.
    Vacuously true for graphs that are not link convex.
    """
    window = proposition2_alpha_window(graph)
    if window is None:
        return True
    lower, upper = window
    if not lower < upper:
        return False
    if upper == float("inf"):
        alpha = lower + 1.0
    else:
        alpha = (lower + upper) / 2.0
    if alpha <= 0:
        return False
    return is_certified_proper_equilibrium(graph, alpha)
