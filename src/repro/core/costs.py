"""Player costs and social costs of the connection games.

Equation (1) of the paper: the cost to player ``i`` under profile ``s`` is

    ``c_i(s) = α·|s_i| + Σ_j d_(i,j)(G(s))``

where ``|s_i|`` is the number of links player ``i`` establishes *or wishes to
establish* and ``d`` is the hop distance in the resulting graph (``∞`` when
disconnected).  Equation (4): the social cost of a BCG graph is
``C(G) = 2α|A| + Σ_{i,j} d_(i,j)(G)`` because both endpoints pay for every
edge; in the UCG each edge is paid for once, so ``C(G) = α|A| + Σ d``.
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs import Graph, distance_sum, total_distance
from .strategies import StrategyProfile


def distance_cost(graph: Graph, player: int) -> float:
    """``Σ_j d_(i,j)(G)``: player ``i``'s distance cost in ``graph``.

    Returns ``inf`` when some player is unreachable, matching the paper's
    convention ``d = ∞`` for disconnected pairs.
    """
    return distance_sum(graph, player)


def player_cost_graph(
    graph: Graph, player: int, alpha: float, links_paid: Optional[int] = None
) -> float:
    """Player cost evaluated on a *graph* (rather than a profile).

    ``links_paid`` is the number of links player ``i`` pays for.  In the BCG
    in equilibrium this is the player's degree (each endpoint pays for each
    incident edge), which is the default.  In the UCG it is the number of
    edges the player *bought*, which depends on the edge ownership and must be
    passed explicitly.
    """
    if links_paid is None:
        links_paid = graph.degree(player)
    return alpha * links_paid + distance_sum(graph, player)


def player_cost_bcg(profile: StrategyProfile, player: int, alpha: float) -> float:
    """Cost of ``player`` in the BCG under an arbitrary profile.

    Note that provisioned-but-unreciprocated requests still cost ``α`` each
    (the paper points out this never happens in equilibrium, but the cost
    function itself charges them).
    """
    graph = profile.bilateral_graph()
    return alpha * profile.num_requests(player) + distance_sum(graph, player)


def player_cost_ucg(profile: StrategyProfile, player: int, alpha: float) -> float:
    """Cost of ``player`` in the UCG under an arbitrary profile."""
    graph = profile.unilateral_graph()
    return alpha * profile.num_requests(player) + distance_sum(graph, player)


def all_player_costs_bcg(profile: StrategyProfile, alpha: float) -> List[float]:
    """Vector of BCG player costs (shares one graph construction)."""
    graph = profile.bilateral_graph()
    return [
        alpha * profile.num_requests(i) + distance_sum(graph, i)
        for i in range(profile.n)
    ]


def all_player_costs_ucg(profile: StrategyProfile, alpha: float) -> List[float]:
    """Vector of UCG player costs (shares one graph construction)."""
    graph = profile.unilateral_graph()
    return [
        alpha * profile.num_requests(i) + distance_sum(graph, i)
        for i in range(profile.n)
    ]


def social_cost_bcg(graph: Graph, alpha: float) -> float:
    """Social cost of a BCG network (paper eq. (4)): ``2α|A| + Σ_{i,j} d``."""
    return 2.0 * alpha * graph.num_edges + total_distance(graph)


def social_cost_ucg(graph: Graph, alpha: float) -> float:
    """Social cost of a UCG network: ``α|A| + Σ_{i,j} d`` (each edge bought once)."""
    return alpha * graph.num_edges + total_distance(graph)


def social_cost_profile_bcg(profile: StrategyProfile, alpha: float) -> float:
    """Sum of all BCG player costs (includes unreciprocated-request charges)."""
    return sum(all_player_costs_bcg(profile, alpha))


def social_cost_profile_ucg(profile: StrategyProfile, alpha: float) -> float:
    """Sum of all UCG player costs (includes doubly-bought-edge charges)."""
    return sum(all_player_costs_ucg(profile, alpha))


def social_cost_lower_bound_bcg(n: int, num_edges: int, alpha: float) -> float:
    """The diameter-two lower bound of eq. (5): ``2n(n-1) + 2(α-1)|A|``.

    Any BCG graph with ``|A|`` edges costs at least this much; the bound is
    met exactly by graphs of diameter two (and by the complete graph).
    """
    return 2.0 * n * (n - 1) + 2.0 * (alpha - 1.0) * num_edges
