"""Closed-form quantities stated by the paper (the "theory oracle").

These are the formulas the experiments compare against: social costs of the
canonical topologies, the Lemma 6 stability window of the cycle, the Moore
bound, and the asymptotic price-of-anarchy bound shapes of Propositions 3
and 4.  Everything is a plain function of ``n`` and ``α`` so the benchmarks
can print "paper formula vs measured" side by side.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..graphs import moore_bound


# --------------------------------------------------------------------------- #
# Social costs of canonical topologies (ordered-pair distance convention)
# --------------------------------------------------------------------------- #


def complete_graph_total_distance(n: int) -> int:
    """``Σ_{i,j} d`` of the complete graph: every ordered pair at distance 1."""
    return n * (n - 1)


def star_total_distance(n: int) -> int:
    """``Σ_{i,j} d`` of the star: ``2(n-1)`` at distance 1, the rest at distance 2."""
    if n < 2:
        return 0
    return 2 * (n - 1) + 2 * (n - 1) * (n - 2)


def cycle_total_distance(n: int) -> int:
    """``Σ_{i,j} d`` of the cycle ``C_n``.

    Each vertex's distance sum is ``n²/4`` for even ``n`` and ``(n²-1)/4`` for
    odd ``n``.
    """
    if n < 3:
        raise ValueError("a cycle requires at least 3 vertices")
    per_vertex = n * n // 4 if n % 2 == 0 else (n * n - 1) // 4
    return n * per_vertex


def path_total_distance(n: int) -> int:
    """``Σ_{i,j} d`` of the path ``P_n`` (equals ``(n³ - n) / 3``)."""
    return (n ** 3 - n) // 3


def star_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Closed-form social cost of the star under BCG or UCG accounting."""
    per_edge = 2.0 if game.lower() == "bcg" else 1.0
    return per_edge * alpha * (n - 1) + star_total_distance(n)


def complete_graph_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Closed-form social cost of the complete graph."""
    per_edge = 2.0 if game.lower() == "bcg" else 1.0
    return per_edge * alpha * (n * (n - 1) // 2) + complete_graph_total_distance(n)


def cycle_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Closed-form social cost of the cycle ``C_n``."""
    per_edge = 2.0 if game.lower() == "bcg" else 1.0
    return per_edge * alpha * n + cycle_total_distance(n)


# --------------------------------------------------------------------------- #
# Lemma 6: the stability window of the cycle in the BCG
# --------------------------------------------------------------------------- #


def cycle_stability_window(n: int) -> Tuple[float, float]:
    """The Lemma 6 link-cost window ``(lower, upper)`` for the cycle ``C_n``.

    The paper's case analysis (for ``k ∈ ℕ``):

    * ``n = 4k - 2``:  ``(n² - 4n + 4) / 8  <  α  <  n(n - 2) / 4``
    * ``n = 4k``:      ``(n² - 4n + 8) / 8  <  α  <  n(n - 2) / 4``
    * ``n = 2k - 1``:  ``(n - 3)(n + 1) / 8 <  α  <  (n + 1)(n - 1) / 4``

    Any ``α`` strictly inside the window makes ``C_n`` pairwise stable (the
    window is derived from link convexity, so it is a sufficient range).
    """
    if n < 3:
        raise ValueError("a cycle requires at least 3 vertices")
    if n % 2 == 1:
        lower = (n - 3) * (n + 1) / 8.0
        upper = (n + 1) * (n - 1) / 4.0
    elif n % 4 == 0:
        lower = (n * n - 4 * n + 8) / 8.0
        upper = n * (n - 2) / 4.0
    else:  # n ≡ 2 (mod 4)
        lower = (n * n - 4 * n + 4) / 8.0
        upper = n * (n - 2) / 4.0
    return lower, upper


def cycle_poa_is_constant(n: int, alpha: float) -> float:
    """The cycle's price of anarchy ``ρ(C_n)`` used in Lemma 6's ``O(1)`` claim.

    Computed from the closed forms: ``(2αn + Θ(n³)) / (2αn + 2n(n-1))`` with
    ``α = Θ(n²)`` inside the stability window, which is bounded by a constant.
    """
    numerator = cycle_social_cost(n, alpha, "bcg")
    denominator = star_social_cost(n, alpha, "bcg")
    return numerator / denominator


# --------------------------------------------------------------------------- #
# Propositions 3 and 4: price-of-anarchy bound shapes
# --------------------------------------------------------------------------- #


def poa_lower_bound_shape(alpha: float) -> float:
    """The Ω(log₂ α) lower-bound shape of Proposition 3 (up to a constant)."""
    if alpha <= 1:
        return 1.0
    return math.log2(alpha)


def poa_upper_bound_shape(alpha: float, n: Optional[int] = None) -> float:
    """The O(√α) upper-bound shape of Proposition 4 (up to a constant).

    When ``n`` is provided the refined ``O(min(√α, n/√α))`` form (tight by
    Demaine et al.) is returned.
    """
    if alpha <= 0:
        raise ValueError("link cost must be positive")
    root = math.sqrt(alpha)
    if n is None:
        return root
    return min(root, n / root)


def moore_bound_order(degree: int, diameter: int) -> int:
    """Re-export of the Moore bound used in the Proposition 3 construction."""
    return moore_bound(degree, diameter)


def proposition3_alpha_estimate(diameter: int) -> float:
    """The ``α = Θ(2^D)`` scaling used in the proof of Proposition 3."""
    return float(2 ** diameter)


def ucg_efficiency_threshold() -> float:
    """Link cost at which the UCG optimum switches from complete graph to star."""
    return 2.0


def bcg_efficiency_threshold() -> float:
    """Link cost at which the BCG optimum switches from complete graph to star (Lemmas 4–5)."""
    return 1.0
