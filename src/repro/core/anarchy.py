"""Price of anarchy computations (Section 4 of the paper).

The price of anarchy of a network ``G`` is ``ρ(G) = C(G) / C(G*)`` where
``G*`` is the efficient network on the same players; the price of anarchy of
a game at link cost ``α`` is the worst ``ρ`` over its equilibrium networks.
The paper also reports the *average* price of anarchy over equilibrium
networks (Figures 2 and 3), which the :mod:`repro.analysis` package computes
from censuses built on top of the functions here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..graphs import Graph
from .efficiency import efficient_social_cost, social_cost


def price_of_anarchy(graph: Graph, alpha: float, game: str = "bcg") -> float:
    """``ρ(G)``: the social cost of ``graph`` relative to the efficient network.

    Returns ``inf`` for disconnected graphs (their social cost is infinite).
    """
    optimum = efficient_social_cost(graph.n, alpha, game)
    if optimum == 0:
        return 1.0
    return social_cost(graph, alpha, game) / optimum


def worst_case_price_of_anarchy(
    graphs: Iterable[Graph], alpha: float, game: str = "bcg"
) -> float:
    """Maximum ``ρ(G)`` over an explicit set of (equilibrium) graphs.

    This is the game's price of anarchy when ``graphs`` is the full set of
    equilibrium networks at ``alpha`` (eq. (6) of the paper).  Returns ``nan``
    for an empty collection.
    """
    values = [price_of_anarchy(g, alpha, game) for g in graphs]
    return max(values) if values else float("nan")


def average_price_of_anarchy(
    graphs: Iterable[Graph], alpha: float, game: str = "bcg"
) -> float:
    """Mean ``ρ(G)`` over an explicit set of (equilibrium) graphs.

    The quantity plotted in Figure 2 of the paper.  Returns ``nan`` for an
    empty collection.
    """
    values = [price_of_anarchy(g, alpha, game) for g in graphs]
    return sum(values) / len(values) if values else float("nan")


def best_case_price_of_anarchy(
    graphs: Iterable[Graph], alpha: float, game: str = "bcg"
) -> float:
    """Minimum ``ρ(G)`` over an explicit set of graphs (the price of stability)."""
    values = [price_of_anarchy(g, alpha, game) for g in graphs]
    return min(values) if values else float("nan")


@dataclass(frozen=True)
class PoAComparison:
    """Side-by-side price of anarchy of one graph under the two games.

    Footnote 6 of the paper shows ``ρ_UCG(G) ≤ 2·ρ_BCG(G)`` for every graph
    ``G`` and link cost ``α > 1`` (with the appropriate optimum in each game's
    denominator); instances of this class make that check explicit.
    """

    graph: Graph
    alpha: float
    rho_ucg: float
    rho_bcg: float

    @property
    def satisfies_footnote6(self) -> bool:
        """Whether ``ρ_UCG(G) ≤ 2·ρ_BCG(G)`` holds (with a small tolerance)."""
        if self.rho_bcg == float("inf"):
            return True
        return self.rho_ucg <= 2.0 * self.rho_bcg + 1e-9


def compare_price_of_anarchy(graph: Graph, alpha: float) -> PoAComparison:
    """Compute ``ρ_UCG`` and ``ρ_BCG`` of the same graph at the same link cost."""
    return PoAComparison(
        graph=graph,
        alpha=alpha,
        rho_ucg=price_of_anarchy(graph, alpha, "ucg"),
        rho_bcg=price_of_anarchy(graph, alpha, "bcg"),
    )


def poa_series(
    graphs_by_alpha: Sequence[Sequence[Graph]],
    alphas: Sequence[float],
    game: str = "bcg",
    aggregate: str = "average",
) -> List[float]:
    """Aggregate PoA per α for a pre-filtered family of equilibrium sets.

    ``graphs_by_alpha[k]`` must contain the equilibrium graphs at
    ``alphas[k]``; ``aggregate`` is ``"average"``, ``"worst"`` or ``"best"``.
    """
    if len(graphs_by_alpha) != len(alphas):
        raise ValueError("graphs_by_alpha and alphas must have the same length")
    if aggregate == "average":
        fn = average_price_of_anarchy
    elif aggregate == "worst":
        fn = worst_case_price_of_anarchy
    elif aggregate == "best":
        fn = best_case_price_of_anarchy
    else:
        raise ValueError("aggregate must be 'average', 'worst' or 'best'")
    return [fn(graphs, alpha, game) for graphs, alpha in zip(graphs_by_alpha, alphas)]
