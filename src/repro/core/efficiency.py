"""Efficient (socially optimal) networks of the connection games.

Lemma 4 and Lemma 5 of the paper characterise the BCG optimum: the complete
graph for ``α < 1`` and the star for ``α > 1`` (both are optimal at ``α = 1``).
The analogous thresholds for the UCG (Fabrikant et al.) are at ``α = 2``
because an edge is paid for only once.  This module provides closed-form
optimal costs, the optimal graphs themselves, and an exhaustive verifier used
by tests and the ``lemma4`` / ``lemma5`` experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..graphs import Graph, complete_graph, star_graph
from .costs import social_cost_bcg, social_cost_ucg


def _check_game(game: str) -> str:
    game = game.lower()
    if game not in ("bcg", "ucg"):
        raise ValueError(f"game must be 'bcg' or 'ucg', got {game!r}")
    return game


def social_cost(graph: Graph, alpha: float, game: str = "bcg") -> float:
    """Social cost of ``graph`` under the given game's accounting."""
    game = _check_game(game)
    if game == "bcg":
        return social_cost_bcg(graph, alpha)
    return social_cost_ucg(graph, alpha)


def complete_graph_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Closed-form social cost of ``K_n``."""
    game = _check_game(game)
    num_edges = n * (n - 1) // 2
    distance_total = n * (n - 1)  # every ordered pair at distance 1
    per_edge = 2.0 if game == "bcg" else 1.0
    return per_edge * alpha * num_edges + distance_total


def star_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Closed-form social cost of the star ``K_{1,n-1}``."""
    game = _check_game(game)
    if n < 2:
        return 0.0
    num_edges = n - 1
    # Ordered pairs: 2(n-1) centre-leaf pairs at distance 1, (n-1)(n-2)
    # ordered leaf-leaf pairs at distance 2.
    distance_total = 2 * (n - 1) + 2 * (n - 1) * (n - 2)
    per_edge = 2.0 if game == "bcg" else 1.0
    return per_edge * alpha * num_edges + distance_total


def efficiency_threshold(game: str = "bcg") -> float:
    """The link cost at which the optimum switches from complete graph to star.

    ``α = 1`` in the BCG (Lemmas 4 and 5) and ``α = 2`` in the UCG.
    """
    game = _check_game(game)
    return 1.0 if game == "bcg" else 2.0


def efficient_social_cost(n: int, alpha: float, game: str = "bcg") -> float:
    """Social cost of the efficient network on ``n`` players.

    The optimum is the complete graph below the game's threshold and the star
    above it (they coincide at the threshold and for ``n <= 2``).
    """
    game = _check_game(game)
    if n < 2:
        return 0.0
    threshold = efficiency_threshold(game)
    if alpha <= threshold:
        return complete_graph_social_cost(n, alpha, game)
    return star_social_cost(n, alpha, game)


def efficient_graph(n: int, alpha: float, game: str = "bcg") -> Graph:
    """An efficient network on ``n`` players (complete graph or star)."""
    game = _check_game(game)
    if n < 2:
        return Graph(n)
    if alpha <= efficiency_threshold(game):
        return complete_graph(n)
    return star_graph(n)


def is_efficient(graph: Graph, alpha: float, game: str = "bcg", tol: float = 1e-9) -> bool:
    """Whether ``graph`` attains the optimal social cost for its size."""
    return social_cost(graph, alpha, game) <= efficient_social_cost(graph.n, alpha, game) + tol


def exhaustive_social_optimum(
    graphs: Iterable[Graph], alpha: float, game: str = "bcg"
) -> Tuple[float, List[Graph]]:
    """Brute-force optimum over an explicit collection of graphs.

    Returns the minimum social cost and *all* graphs in the collection that
    attain it (used to verify the uniqueness claims of Lemmas 4 and 5 on
    exhaustive enumerations of small graphs).
    """
    best = float("inf")
    argmin: List[Graph] = []
    for graph in graphs:
        cost = social_cost(graph, alpha, game)
        if cost < best - 1e-9:
            best = cost
            argmin = [graph]
        elif abs(cost - best) <= 1e-9:
            argmin.append(graph)
    return best, argmin
