"""Equilibrium machinery for the unilateral connection game (UCG).

The UCG is the network creation game of Fabrikant et al. (PODC 2003): a
player unilaterally buys links at cost ``α`` each and pays its total hop
distance to all other players.  The paper compares its Nash equilibria with
the pairwise-stable networks of the BCG, so we need three things:

* exact best responses (player-level optimisation by subset enumeration);
* a Nash test for explicit strategy profiles (Definition 1);
* a Nash test for *graphs*: a graph is a Nash (equilibrium) network when some
  assignment of each edge to a buying endpoint makes every player's purchase
  set a best response.  Deciding this is NP-hard in general; for the small
  graphs of the empirical study we use exact search, made affordable by two
  observations:

  1. for a fixed player and a fixed set of owned edges, the set of link costs
     ``α`` at which that ownership is a best response is a closed interval
     (every Nash constraint is linear in ``α``);
  2. ownership assignments can be enumerated by backtracking over vertices,
     intersecting the per-player intervals and pruning as soon as the
     intersection becomes empty.

The result of the search is an :class:`~repro.core.stability_intervals.AlphaIntervalSet`
describing *all* link costs at which the graph is Nash-supportable, so a
census over many values of ``α`` pays the search cost only once per graph.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..engine import DistanceOracle, get_default_oracle
from ..graphs import Graph, INFINITY, bitset_distance_sum
from .stability_intervals import (
    AlphaInterval,
    AlphaIntervalSet,
    FULL_ALPHA_RANGE,
    distance_delta,
)
from .strategies import StrategyProfile

Edge = Tuple[int, int]

#: Interval returned when an ownership set is never a best response.
_EMPTY_INTERVAL = AlphaInterval(1.0, 0.0)


def _subsets(items: Sequence[int]) -> Iterable[Tuple[int, ...]]:
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))


def _source_distance_sum_with_extras(
    others_graph: Graph, source: int, extra_neighbors: Sequence[int]
) -> float:
    """Distance sum from ``source`` after adding edges from ``source`` to ``extra_neighbors``.

    The candidate purchases of a UCG player are all incident to the player, so
    instead of materialising a new :class:`Graph` per purchase set we run a
    word-parallel bitset BFS whose source row simply has the extra neighbours
    OR-ed on (the reverse direction is irrelevant for paths *from* the
    source).  This is the hot loop of every best-response computation
    (``2^(n-1)`` purchase sets per player), so avoiding the graph
    construction matters.
    """
    rows = others_graph.adjacency_rows()
    extra_mask = 0
    for j in extra_neighbors:
        extra_mask |= 1 << j
    if extra_mask and not (rows[source] | extra_mask) == rows[source]:
        rows = list(rows)
        rows[source] |= extra_mask
    return bitset_distance_sum(rows, others_graph.n, source)


# --------------------------------------------------------------------------- #
# Best responses
# --------------------------------------------------------------------------- #


def best_response_ucg(
    others_graph: Graph, player: int, alpha: float
) -> Tuple[float, FrozenSet[int]]:
    """Exact best response of ``player`` given the links bought by the others.

    Parameters
    ----------
    others_graph:
        The graph formed by every edge bought by players other than
        ``player`` (including edges others bought towards ``player``).
    player:
        The optimising player.
    alpha:
        Link cost.

    Returns
    -------
    (cost, targets):
        The minimum achievable cost ``α·|S| + Σ_j d`` and one optimal purchase
        set ``S`` (ties broken towards fewer, lexicographically smaller
        purchases for determinism).
    """
    candidates = [
        j
        for j in range(others_graph.n)
        if j != player and not others_graph.has_edge(player, j)
    ]
    best_cost = INFINITY
    best_set: FrozenSet[int] = frozenset()
    for subset in _subsets(candidates):
        cost = alpha * len(subset) + _source_distance_sum_with_extras(
            others_graph, player, subset
        )
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_set = frozenset(subset)
    return best_cost, best_set


def is_nash_profile_ucg(profile: StrategyProfile, alpha: float) -> bool:
    """Whether ``profile`` is a (pure) Nash equilibrium of the UCG.

    Every player's purchase set is compared against its exact best response.
    Cost comparisons are made through deltas with the ``∞ - ∞ = 0``
    convention, consistently with the rest of the library.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    oracle = get_default_oracle()
    full_graph = profile.unilateral_graph()
    for player in range(profile.n):
        others = profile.with_player_strategy(player, ()).unilateral_graph()
        current_distance = oracle.distance_sum(full_graph, player)
        current_links = profile.num_requests(player)
        candidates = [
            j
            for j in range(profile.n)
            if j != player and not others.has_edge(player, j)
        ]
        for subset in _subsets(candidates):
            candidate_distance = _source_distance_sum_with_extras(
                others, player, subset
            )
            delta = distance_delta(
                candidate_distance, current_distance
            ) + alpha * (len(subset) - current_links)
            if delta < -1e-12:
                return False
    return True


# --------------------------------------------------------------------------- #
# Nash-supportability of a graph: per-player α-intervals + orientation search
# --------------------------------------------------------------------------- #


def ownership_best_response_interval(
    graph: Graph,
    player: int,
    owned: FrozenSet[Edge],
    oracle: Optional[DistanceOracle] = None,
) -> AlphaInterval:
    """Link costs at which owning exactly ``owned`` is a best response.

    ``owned`` must be a subset of the edges incident to ``player`` in
    ``graph``.  The opponents' edges are the remaining edges of the graph;
    the player may deviate to buying any set of links towards players it is
    not already connected to by an opponent-bought edge.  Every Nash
    constraint ``c_i(owned) <= c_i(S)`` is linear in ``α``, so the feasible
    region is a closed interval (possibly empty).
    """
    for (u, v) in owned:
        if player not in (u, v):
            raise ValueError(f"edge {(u, v)} is not incident to player {player}")
        if not graph.has_edge(u, v):
            raise ValueError(f"edge {(u, v)} is not in the graph")

    if oracle is None:
        oracle = get_default_oracle()
    base_distance = oracle.distance_sum(graph, player)
    owned_count = len(owned)
    others_graph = graph.remove_edges(owned)
    candidates = [
        j
        for j in range(graph.n)
        if j != player and not others_graph.has_edge(player, j)
    ]
    lo, hi = 0.0, INFINITY
    for subset in _subsets(candidates):
        size = len(subset)
        candidate_distance = _source_distance_sum_with_extras(
            others_graph, player, subset
        )
        delta = distance_delta(candidate_distance, base_distance)
        if size == owned_count:
            if delta < -1e-12:
                return _EMPTY_INTERVAL
        elif size > owned_count:
            # Buying (size - owned_count) more links must not pay off:
            # α >= -delta / (size - owned_count).
            lo = max(lo, -delta / (size - owned_count))
        else:
            # Dropping (owned_count - size) links must not pay off:
            # α <= delta / (owned_count - size).
            hi = min(hi, delta / (owned_count - size))
        if lo > hi:
            return _EMPTY_INTERVAL
    return AlphaInterval(lo, hi)


def orientation_interval_search(
    graph: Graph,
    ownership_interval: Callable[[int, FrozenSet[Edge]], AlphaInterval],
) -> AlphaIntervalSet:
    """Union over edge orientations of the per-player interval intersections.

    The shared engine of the scalar and weighted Nash-supportability
    computations: assignments of each edge to a buying endpoint are
    enumerated by backtracking vertex by vertex, ``ownership_interval(
    player, owned)`` supplies the (cached-by-the-caller or not) link-cost
    interval at which that ownership is a best response, and branches whose
    running intersection empties are pruned.  The union of the surviving
    intersections is returned.
    """
    n = graph.n
    edges_at: List[List[Edge]] = [[] for _ in range(n)]
    for (u, v) in graph.sorted_edges():
        edges_at[u].append((u, v))

    result = AlphaIntervalSet()
    assigned_to: List[List[Edge]] = [[] for _ in range(n)]

    def backtrack(player: int, running: AlphaInterval) -> None:
        if running.is_empty():
            return
        if player == n:
            result.add(running)
            return
        local_edges = edges_at[player]
        for take in _subsets(range(len(local_edges))):
            taken = [local_edges[k] for k in take]
            owned = frozenset(assigned_to[player] + taken)
            interval = ownership_interval(player, owned)
            narrowed = running.intersect(interval)
            if narrowed.is_empty():
                continue
            passed_on = [edge for edge in local_edges if edge not in taken]
            for (_, other) in passed_on:
                assigned_to[other].append((min(player, other), max(player, other)))
            backtrack(player + 1, narrowed)
            for (_, other) in passed_on:
                assigned_to[other].pop()

    backtrack(0, FULL_ALPHA_RANGE)
    return result


def ucg_nash_alpha_set(
    graph: Graph, oracle: Optional[DistanceOracle] = None
) -> AlphaIntervalSet:
    """All link costs at which ``graph`` is a Nash network of the UCG.

    Runs :func:`orientation_interval_search` over the per-player
    best-response intervals of :func:`ownership_best_response_interval`
    (memoised per ``(player, owned)`` — distinct orientations reuse them).

    The result is additionally memoised per :class:`Graph` *instance* (the
    endpoint tuple lives on the graph's ``_ucg_set`` slot, mirroring the
    canonical-record memo and the α-threshold memos of
    :class:`PairwiseStabilityProfile`): graphs are immutable — every edge
    mutation builds a new instance — so the memo can never observe a stale
    orientation search.  The batched engine
    (:func:`repro.engine.ucg.ucg_alpha_sets`) reads and populates the same
    slot, so mixing the two paths never recomputes.
    """
    cached = getattr(graph, "_ucg_set", None)
    if cached is not None:
        return AlphaIntervalSet(
            AlphaInterval(lo, hi) for lo, hi in cached
        )
    if oracle is None:
        oracle = get_default_oracle()

    interval_cache: Dict[Tuple[int, FrozenSet[Edge]], AlphaInterval] = {}

    def player_interval(player: int, owned: FrozenSet[Edge]) -> AlphaInterval:
        key = (player, owned)
        if key not in interval_cache:
            interval_cache[key] = ownership_best_response_interval(
                graph, player, owned, oracle=oracle
            )
        return interval_cache[key]

    result = orientation_interval_search(graph, player_interval)
    graph._ucg_set = tuple(
        (interval.lo, interval.hi) for interval in result.intervals
    )
    return result


def is_nash_graph_ucg(
    graph: Graph, alpha: float, oracle: Optional[DistanceOracle] = None
) -> bool:
    """Whether ``graph`` is achievable as a Nash network of the UCG at ``alpha``."""
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    return ucg_nash_alpha_set(graph, oracle=oracle).contains(alpha)


def nash_graphs_ucg(
    graphs: Iterable[Graph], alpha: float, oracle: Optional[DistanceOracle] = None
) -> List[Graph]:
    """Filter an iterable of graphs down to the UCG Nash networks at ``alpha``."""
    if oracle is None:
        oracle = get_default_oracle()
    return [g for g in graphs if is_nash_graph_ucg(g, alpha, oracle=oracle)]


def nash_supporting_ownership(
    graph: Graph, alpha: float
) -> Optional[Dict[Edge, int]]:
    """An edge-ownership assignment witnessing that ``graph`` is Nash at ``alpha``.

    Returns ``None`` when no assignment works.  Useful for constructing an
    explicit supporting :class:`~repro.core.strategies.StrategyProfile`.
    """
    if alpha <= 0:
        raise ValueError("the paper assumes a strictly positive link cost α")
    n = graph.n
    edges_at: List[List[Edge]] = [[] for _ in range(n)]
    for (u, v) in graph.sorted_edges():
        edges_at[u].append((u, v))

    interval_cache: Dict[Tuple[int, FrozenSet[Edge]], AlphaInterval] = {}

    def player_interval(player: int, owned: FrozenSet[Edge]) -> AlphaInterval:
        key = (player, owned)
        if key not in interval_cache:
            interval_cache[key] = ownership_best_response_interval(graph, player, owned)
        return interval_cache[key]

    assigned_to: List[List[Edge]] = [[] for _ in range(n)]
    ownership: Dict[Edge, int] = {}

    def backtrack(player: int) -> bool:
        if player == n:
            return True
        local_edges = edges_at[player]
        for take in _subsets(range(len(local_edges))):
            taken = [local_edges[k] for k in take]
            owned = frozenset(assigned_to[player] + taken)
            if not player_interval(player, owned).contains(alpha):
                continue
            passed_on = [edge for edge in local_edges if edge not in taken]
            for edge in taken:
                ownership[edge] = player
            for edge in passed_on:
                _, other = edge
                ownership[edge] = other
                assigned_to[other].append(edge)
            if backtrack(player + 1):
                return True
            for edge in passed_on:
                assigned_to[edge[1]].pop()
        return False

    if backtrack(0):
        return dict(ownership)
    return None
