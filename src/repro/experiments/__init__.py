"""One module per paper artefact (figure / lemma / proposition) plus a runner."""

from .base import ClaimCheck, ExperimentResult
from .runner import EXPERIMENTS, available_experiments, run_all, run_experiment

__all__ = [
    "ClaimCheck",
    "ExperimentResult",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "run_all",
]
