"""Extension experiments beyond the paper's published evaluation.

Three experiments cover material the paper states without evaluating, or
flags as future work in Section 6:

* ``prop2``   — Proposition 2: link-convex graphs are achievable as proper
  equilibria (checked via the Lemma 3 certificate on the Figure 1 graphs,
  the cage family and an exhaustive small census).
* ``ext_transfers`` — the Section 6 question: do bilateral transfers mediate
  the price of anarchy?  We compare the average and worst-case PoA of
  pairwise-stable networks with and without transfers on an exhaustive
  census.
* ``ext_stability`` — the price of *stability* (best equilibrium) of both
  games, quantifying the related-work remark that the welfare-optimal
  network is itself stable in the BCG.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.census import cached_census
from ..analysis.report import format_table
from ..core.anarchy import (
    average_price_of_anarchy,
    best_case_price_of_anarchy,
    worst_case_price_of_anarchy,
)
from ..core.convexity import is_link_convex
from ..core.proper import proposition2_holds_for, proposition2_alpha_window
from ..core.transfers import transfer_stable_graphs
from ..graphs import (
    clebsch_graph,
    cycle_graph,
    heawood_graph,
    is_star,
    mcgee_graph,
    octahedral_graph,
    petersen_graph,
    star_graph,
)
from .base import ExperimentResult

#: Named graphs used by the Proposition 2 experiment.
PROP2_GRAPHS = {
    "petersen": petersen_graph,
    "heawood": heawood_graph,
    "mcgee": mcgee_graph,
    "clebsch": clebsch_graph,
    "octahedral": octahedral_graph,
    "star_8": lambda: star_graph(8),
    "cycle_10": lambda: cycle_graph(10),
}


def run_proposition2(census_n: int = 5, jobs: Optional[int] = None) -> ExperimentResult:
    """Proposition 2: link-convex graphs are achievable as proper equilibria."""
    result = ExperimentResult(
        experiment_id="prop2",
        title="Proposition 2 — link-convex graphs are achievable as proper equilibria",
    )
    rows = []
    for name, builder in PROP2_GRAPHS.items():
        graph = builder()
        convex = is_link_convex(graph)
        window = proposition2_alpha_window(graph)
        holds = proposition2_holds_for(graph)
        result.add_claim(
            description=f"{name}: Lemma 3 certificate holds inside the link-convex window",
            expected="certificate holds (vacuous when not link convex)",
            observed=(
                f"link convex: {convex}, window: "
                f"{tuple(round(x, 4) for x in window) if window else '-'}, holds: {holds}"
            ),
            passed=holds,
        )
        rows.append([name, "yes" if convex else "no", str(window) if window else "-", holds])

    census = cached_census(census_n, include_ucg=False, jobs=jobs)
    violations = sum(
        0 if proposition2_holds_for(record.graph) else 1 for record in census.records
    )
    result.add_claim(
        description=(
            f"Proposition 2 holds for every connected graph on {census_n} vertices"
        ),
        expected="0 violations",
        observed=f"{violations} violations over {len(census)} topologies",
        passed=violations == 0,
    )
    result.tables.append(
        format_table(["graph", "link convex", "Prop. 2 α window", "certificate holds"], rows)
    )
    return result


def run_transfers(
    n: int = 6,
    alphas: Sequence[float] = (1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Section 6 extension: transfers shrink the stable set and mediate the PoA."""
    result = ExperimentResult(
        experiment_id="ext_transfers",
        title=f"Extension — pairwise stability with transfers (n = {n})",
    )
    result.notes.append(
        "the paper's conclusion asks whether bilateral transfers mediate the price "
        "of anarchy; this experiment compares the pairwise-stable set with and "
        "without side payments on the exhaustive census"
    )
    census = cached_census(n, include_ucg=False, jobs=jobs)
    graphs = [record.graph for record in census.records]
    rows = []
    never_worse_worst = True
    efficient_always_transfer_stable = True
    max_average_change = 0.0
    from ..core.efficiency import efficient_graph
    from ..core.transfers import is_pairwise_stable_with_transfers

    for alpha in alphas:
        plain = census.stable_graphs_bcg(alpha)
        with_transfers = transfer_stable_graphs(graphs, alpha)
        avg_plain = average_price_of_anarchy(plain, alpha, "bcg")
        avg_transfers = average_price_of_anarchy(with_transfers, alpha, "bcg")
        worst_plain = worst_case_price_of_anarchy(plain, alpha, "bcg")
        worst_transfers = worst_case_price_of_anarchy(with_transfers, alpha, "bcg")
        if worst_transfers > worst_plain + 1e-9:
            never_worse_worst = False
        if not is_pairwise_stable_with_transfers(efficient_graph(n, alpha, "bcg"), alpha):
            efficient_always_transfer_stable = False
        if avg_plain == avg_plain and avg_transfers == avg_transfers:
            max_average_change = max(max_average_change, abs(avg_transfers - avg_plain))
        rows.append(
            [
                alpha,
                len(plain),
                len(with_transfers),
                avg_plain,
                avg_transfers,
                worst_plain,
                worst_transfers,
            ]
        )
    result.add_claim(
        description="transfers never worsen the worst-case PoA of the stable set",
        expected="worst PoA with transfers <= without, at every α",
        observed=f"holds at all {len(alphas)} grid points: {never_worse_worst}",
        passed=never_worse_worst,
    )
    result.add_claim(
        description="the efficient network stays stable when transfers are allowed",
        expected="star (α > 1) / complete graph (α < 1) transfer-stable at every α",
        observed=f"holds at all grid points: {efficient_always_transfer_stable}",
        passed=efficient_always_transfer_stable,
    )
    result.add_claim(
        description=(
            "purely local (bilateral) transfers barely move the average PoA — the "
            "inefficiency is driven by externalities on third parties"
        ),
        expected="average PoA changes by < 0.02 at every α",
        observed=f"max |Δ avg PoA| = {max_average_change:.4f}",
        passed=max_average_change < 0.02,
    )
    result.tables.append(
        format_table(
            [
                "alpha",
                "#stable",
                "#stable w/ transfers",
                "avg PoA",
                "avg PoA w/ transfers",
                "worst PoA",
                "worst PoA w/ transfers",
            ],
            rows,
        )
    )
    return result


def run_price_of_stability(
    n: int = 6,
    alphas: Sequence[float] = (0.5, 1.5, 2.5, 4.0, 8.0, 16.0, 30.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Price of stability of both games (the best equilibrium vs the optimum)."""
    result = ExperimentResult(
        experiment_id="ext_stability",
        title=f"Extension — price of stability of the BCG and the UCG (n = {n})",
    )
    census = cached_census(n, jobs=jobs)
    rows = []
    bcg_always_one = True
    ucg_bounded = True
    for alpha in alphas:
        stable = census.stable_graphs_bcg(alpha)
        nash = census.nash_graphs_ucg(alpha)
        pos_bcg = best_case_price_of_anarchy(stable, alpha, "bcg")
        pos_ucg = best_case_price_of_anarchy(nash, alpha, "ucg")
        star_stable = any(is_star(g) for g in stable)
        if not (abs(pos_bcg - 1.0) < 1e-9):
            bcg_always_one = False
        if not (pos_ucg <= 4.0 / 3.0 + 1e-9):
            ucg_bounded = False
        rows.append([alpha, pos_bcg, pos_ucg, "yes" if star_stable else "no"])
    result.add_claim(
        description="the BCG's price of stability is 1 (the optimum is itself stable)",
        expected="best-case PoA = 1 at every link cost",
        observed=f"holds at all {len(alphas)} grid points: {bcg_always_one}",
        passed=bcg_always_one,
    )
    result.add_claim(
        description="the UCG's price of stability stays below 4/3",
        expected="best-case PoA <= 4/3 at every link cost",
        observed=f"holds at all grid points: {ucg_bounded}",
        passed=ucg_bounded,
    )
    result.tables.append(
        format_table(
            ["alpha", "PoS (BCG)", "PoS (UCG)", "star/complete optimum stable in BCG"],
            rows,
        )
    )
    return result
