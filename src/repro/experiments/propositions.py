"""Computational checks of Propositions 1, 3, 4, 5 and Footnote 6.

* **Proposition 1**: pairwise stability and pairwise Nash coincide in the BCG
  (checked exhaustively over a small census, independent implementations).
* **Proposition 3**: regular graphs near the Moore bound (cages) are pairwise
  stable and give a price of anarchy of order ``log₂ α``.
* **Proposition 4**: the worst-case PoA over pairwise-stable graphs is
  ``O(√α)`` — checked as ``max PoA ≤ c·min(√α, n/√α)`` on an exhaustive
  census.
* **Proposition 5**: a tree that is a UCG Nash graph is pairwise stable in
  the BCG at the same link cost — checked for every tree on up to ``n``
  vertices and every link cost in its UCG Nash interval.
* **Footnote 6**: ``ρ_UCG(G) ≤ 2·ρ_BCG(G)`` for every graph and link cost.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..analysis.census import cached_census
from ..analysis.report import format_table
from ..core.anarchy import compare_price_of_anarchy, price_of_anarchy
from ..core.bilateral import is_pairwise_nash, is_pairwise_stable
from ..core.convexity import is_link_convex
from ..core.stability_intervals import pairwise_stability_interval
from ..core.unilateral import ucg_nash_alpha_set
from ..graphs import (
    enumerate_trees,
    heawood_graph,
    hoffman_singleton_graph,
    mcgee_graph,
    petersen_graph,
    regular_graph_profile,
    tutte_coxeter_graph,
)
from .base import ExperimentResult

#: Cage / Moore graphs used for the Proposition 3 lower-bound construction.
PROP3_GRAPHS = {
    "petersen (3,5)-cage": petersen_graph,
    "heawood (3,6)-cage": heawood_graph,
    "mcgee (3,7)-cage": mcgee_graph,
    "tutte-coxeter (3,8)-cage": tutte_coxeter_graph,
    "hoffman-singleton (7,5)-cage": hoffman_singleton_graph,
}


# --------------------------------------------------------------------------- #
# Proposition 1
# --------------------------------------------------------------------------- #


def run_proposition1(
    n: int = 5,
    alphas: Sequence[float] = (0.5, 1.0, 1.5, 2.5, 4.0, 8.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Proposition 1: pairwise stable ⟺ pairwise Nash, checked exhaustively."""
    result = ExperimentResult(
        experiment_id="prop1",
        title=f"Proposition 1 — pairwise stability coincides with pairwise Nash (n = {n})",
    )
    census = cached_census(n, include_ucg=False, jobs=jobs)
    rows = []
    for alpha in alphas:
        stable = {
            record.graph.edge_key()
            for record in census.records
            if is_pairwise_stable(record.graph, alpha)
        }
        nash = {
            record.graph.edge_key()
            for record in census.records
            if is_pairwise_nash(record.graph, alpha)
        }
        agrees = stable == nash
        result.add_claim(
            description=f"α = {alpha}: the two solution concepts select the same graphs",
            expected="identical sets",
            observed=f"|pairwise stable| = {len(stable)}, |pairwise Nash| = {len(nash)}, equal: {agrees}",
            passed=agrees,
        )
        rows.append([alpha, len(stable), len(nash), "yes" if agrees else "no"])
    result.tables.append(
        format_table(["alpha", "#pairwise stable", "#pairwise Nash", "identical"], rows)
    )
    return result


# --------------------------------------------------------------------------- #
# Proposition 3
# --------------------------------------------------------------------------- #


def run_proposition3() -> ExperimentResult:
    """Proposition 3: Moore-bound regular graphs are stable with PoA of order log₂ α."""
    result = ExperimentResult(
        experiment_id="prop3",
        title="Proposition 3 — lower bound: pairwise stable graphs with PoA Ω(log₂ α)",
    )
    rows = []
    ratios = []
    for name, builder in PROP3_GRAPHS.items():
        graph = builder()
        profile = regular_graph_profile(graph)
        alpha_min, alpha_max = pairwise_stability_interval(graph)
        has_window = alpha_min < alpha_max
        alpha = alpha_min + 1.0 if alpha_max == float("inf") else (alpha_min + alpha_max) / 2.0
        stable = has_window and is_pairwise_stable(graph, alpha)
        link_convex = is_link_convex(graph)
        poa = price_of_anarchy(graph, alpha, "bcg")
        log_alpha = math.log2(alpha) if alpha > 1 else 1.0
        ratio = poa / log_alpha
        ratios.append(ratio)
        result.add_claim(
            description=f"{name} is link convex and pairwise stable for some α",
            expected="link convex, non-empty stability window",
            observed=f"link convex: {link_convex}, window ({alpha_min:.4g}, {alpha_max:.4g}], stable: {stable}",
            passed=link_convex and stable,
        )
        rows.append(
            [
                name,
                graph.n,
                profile.degree,
                f"{profile.girth:g}",
                f"{profile.moore_ratio:.3f}",
                f"({alpha_min:.4g}, {alpha_max:.4g}]",
                alpha,
                poa,
                log_alpha,
                ratio,
            ]
        )
    spread = max(ratios) / min(ratios)
    result.add_claim(
        description="PoA scales like log₂ α across the cage family (bounded ratio)",
        expected="ρ / log₂(α) within a small constant factor across the family",
        observed=f"ratio range [{min(ratios):.3f}, {max(ratios):.3f}], spread {spread:.2f}x",
        passed=spread < 6.0,
    )
    result.tables.append(
        format_table(
            [
                "graph",
                "n",
                "degree",
                "girth",
                "n / Moore bound",
                "stable α window",
                "α used",
                "ρ(G)",
                "log2(α)",
                "ρ / log2(α)",
            ],
            rows,
        )
    )
    return result


# --------------------------------------------------------------------------- #
# Proposition 4 (+ Footnote 6)
# --------------------------------------------------------------------------- #


def run_proposition4(
    n: int = 6,
    alphas: Sequence[float] = (1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 36.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Proposition 4: worst-case PoA over pairwise-stable graphs is O(min(√α, n/√α))."""
    result = ExperimentResult(
        experiment_id="prop4",
        title=f"Proposition 4 — upper bound: worst-case PoA of the BCG is O(√α) (n = {n})",
    )
    census = cached_census(n, include_ucg=False, jobs=jobs)
    rows = []
    ratios = []
    for alpha in alphas:
        worst = census.worst_price_of_anarchy(alpha, "bcg")
        bound_shape = min(math.sqrt(alpha), n / math.sqrt(alpha))
        ratio = worst / bound_shape if bound_shape > 0 else float("nan")
        ratios.append(ratio)
        rows.append([alpha, worst, bound_shape, ratio])
    constant = max(r for r in ratios if r == r)
    result.add_claim(
        description="worst-case PoA stays below a constant multiple of min(√α, n/√α)",
        expected="bounded ratio across the α grid",
        observed=f"max ratio = {constant:.3f}",
        passed=constant < 4.0,
    )
    result.tables.append(
        format_table(["alpha", "worst PoA (BCG)", "min(sqrt(a), n/sqrt(a))", "ratio"], rows)
    )

    # Footnote 6: rho_UCG(G) <= 2 rho_BCG(G) for every connected graph and α.
    violations = 0
    checked = 0
    for record in census.records:
        for alpha in alphas:
            comparison = compare_price_of_anarchy(record.graph, alpha)
            checked += 1
            if not comparison.satisfies_footnote6:
                violations += 1
    result.add_claim(
        description="Footnote 6: ρ_UCG(G) ≤ 2·ρ_BCG(G) for every graph and link cost",
        expected="no violations",
        observed=f"{violations} violations out of {checked} (graph, α) pairs",
        passed=violations == 0,
    )
    return result


# --------------------------------------------------------------------------- #
# Proposition 5
# --------------------------------------------------------------------------- #


def run_proposition5(max_n: int = 7, samples_per_tree: int = 3) -> ExperimentResult:
    """Proposition 5: UCG-Nash trees are pairwise stable in the BCG at the same α."""
    result = ExperimentResult(
        experiment_id="prop5",
        title=f"Proposition 5 — Nash trees of the UCG are pairwise stable in the BCG (n ≤ {max_n})",
    )
    rows = []
    total_trees = 0
    nash_trees = 0
    counterexamples = 0
    checks = 0
    for n in range(3, max_n + 1):
        for tree in enumerate_trees(n):
            total_trees += 1
            nash_set = ucg_nash_alpha_set(tree)
            if nash_set.is_empty():
                continue
            nash_trees += 1
            for interval in nash_set.intervals:
                lo = max(interval.lo, 1e-6)
                hi = interval.hi if interval.hi != float("inf") else lo + 10.0 * n
                if hi < lo:
                    continue
                step = (hi - lo) / max(samples_per_tree - 1, 1)
                for k in range(samples_per_tree):
                    alpha = lo + k * step
                    if alpha <= 0:
                        continue
                    checks += 1
                    if not is_pairwise_stable(tree, alpha):
                        counterexamples += 1
            rows.append(
                [
                    n,
                    tree.num_edges,
                    str(nash_set),
                ]
            )
    result.add_claim(
        description="every UCG-Nash tree is pairwise stable in the BCG at the same link cost",
        expected="no counterexamples",
        observed=(
            f"{nash_trees}/{total_trees} trees are UCG-Nash for some α; "
            f"{checks} (tree, α) checks, {counterexamples} counterexamples"
        ),
        passed=counterexamples == 0 and checks > 0,
    )
    result.tables.append(
        format_table(["n", "edges", "UCG Nash α-set"], rows[:40])
    )
    if len(rows) > 40:
        result.notes.append(f"table truncated to the first 40 of {len(rows)} Nash trees")
    return result


def run(n: int = 6) -> ExperimentResult:
    """Run all proposition experiments and merge them into a single report."""
    merged = ExperimentResult(
        experiment_id="propositions",
        title="Propositions 1, 3, 4, 5 and Footnote 6",
    )
    for sub in (
        run_proposition1(min(n, 5)),
        run_proposition3(),
        run_proposition4(n),
        run_proposition5(),
    ):
        merged.claims.extend(sub.claims)
        merged.tables.extend(sub.tables)
        merged.notes.extend(sub.notes)
    return merged
