"""Registry and runner for every reproduction experiment.

Each entry maps an experiment id (as used in DESIGN.md and EXPERIMENTS.md) to
a callable returning an
:class:`~repro.experiments.base.ExperimentResult`.  The CLI, the examples and
the benchmark harness all go through this registry so there is exactly one
code path that regenerates each figure or result.

Execution options (``jobs`` for process-pool fan-out, ``seed`` for
reproducible sampled runs) are forwarded to an experiment only when its
``run`` callable declares the corresponding keyword, so experiments opt in
without every entry having to grow the parameters at once.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

from . import dynamics_extension, extensions, figure1, figure2, figure3, lemmas, propositions
from .base import ExperimentResult

ExperimentFn = Callable[..., ExperimentResult]

#: Registry of experiment id -> callable.
EXPERIMENTS: Dict[str, ExperimentFn] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "lemma4": lemmas.run_lemma4,
    "lemma5": lemmas.run_lemma5,
    "lemma6": lemmas.run_lemma6,
    "prop1": propositions.run_proposition1,
    "prop2": extensions.run_proposition2,
    "prop3": propositions.run_proposition3,
    "prop4": propositions.run_proposition4,
    "prop5": propositions.run_proposition5,
    "ext_transfers": extensions.run_transfers,
    "ext_stability": extensions.run_price_of_stability,
    "ext_dynamics": dynamics_extension.run,
}


def available_experiments() -> List[str]:
    """All registered experiment ids, in a stable order."""
    return sorted(EXPERIMENTS)


def _accepted_options(
    fn: ExperimentFn,
    jobs: Optional[int],
    seed: Optional[int],
    sampled: bool,
) -> Dict[str, object]:
    """The subset of execution options that ``fn``'s signature accepts."""
    options: Dict[str, object] = {}
    parameters = inspect.signature(fn).parameters
    if jobs is not None and "jobs" in parameters:
        options["jobs"] = jobs
    if seed is not None and "seed" in parameters:
        options["seed"] = seed
    if sampled and "include_sampled" in parameters:
        options["include_sampled"] = True
    return options


def run_experiment(
    experiment_id: str,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    sampled: bool = False,
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    experiment_id:
        Registered experiment id (see :func:`available_experiments`).
    jobs:
        Process-pool width for experiments that fan work out (censuses,
        sampled sweeps); ``None``/``1`` is serial, negative means one worker
        per CPU.  Ignored by experiments that declare no ``jobs`` keyword.
    seed:
        Override of the experiment's default sampling seed, for reproducible
        dynamics runs from the command line.  Ignored by deterministic
        experiments that declare no ``seed`` keyword.
    sampled:
        Also run the dynamics-sampled (paper-sized ``n``) variant for
        experiments that offer one (``include_sampled`` keyword); this is
        the path on which ``seed`` takes effect for the figures.

    Raises
    ------
    KeyError
        If the id is not registered.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    fn = EXPERIMENTS[experiment_id]
    return fn(**_accepted_options(fn, jobs, seed, sampled))


def run_all(
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    sampled: bool = False,
) -> List[ExperimentResult]:
    """Run every registered experiment (in id order)."""
    return [
        run_experiment(eid, jobs=jobs, seed=seed, sampled=sampled)
        for eid in available_experiments()
    ]
