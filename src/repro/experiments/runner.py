"""Registry and runner for every reproduction experiment.

Each entry maps an experiment id (as used in DESIGN.md and EXPERIMENTS.md) to
a zero-argument callable returning an
:class:`~repro.experiments.base.ExperimentResult`.  The CLI, the examples and
the benchmark harness all go through this registry so there is exactly one
code path that regenerates each figure or result.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from . import dynamics_extension, extensions, figure1, figure2, figure3, lemmas, propositions
from .base import ExperimentResult

ExperimentFn = Callable[[], ExperimentResult]

#: Registry of experiment id -> callable.
EXPERIMENTS: Dict[str, ExperimentFn] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "lemma4": lemmas.run_lemma4,
    "lemma5": lemmas.run_lemma5,
    "lemma6": lemmas.run_lemma6,
    "prop1": propositions.run_proposition1,
    "prop2": extensions.run_proposition2,
    "prop3": propositions.run_proposition3,
    "prop4": propositions.run_proposition4,
    "prop5": propositions.run_proposition5,
    "ext_transfers": extensions.run_transfers,
    "ext_stability": extensions.run_price_of_stability,
    "ext_dynamics": dynamics_extension.run,
}


def available_experiments() -> List[str]:
    """All registered experiment ids, in a stable order."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id.

    Raises
    ------
    KeyError
        If the id is not registered.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    return EXPERIMENTS[experiment_id]()


def run_all() -> List[ExperimentResult]:
    """Run every registered experiment (in id order)."""
    return [run_experiment(eid) for eid in available_experiments()]
