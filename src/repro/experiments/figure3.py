"""Figure 3: average number of links in equilibrium networks, UCG vs BCG.

The paper explains the Figure 2 reversal by showing (Figure 3) that
pairwise-stable networks of the BCG carry *more* edges on average than Nash
networks of the UCG over a range of link costs — the bilateral game gets
stuck in over-connected, inefficient configurations when links are expensive.
This experiment regenerates the series and checks that claim on the
reproduced census (and optionally on a dynamics-sampled ten-agent census).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.figure_series import FigureData, census_figure_series, sampled_figure_series
from ..analysis.report import format_figure
from ..analysis.sampling import sample_equilibria_over_grid
from ..analysis.sweeps import log_spaced_alphas
from .base import ExperimentResult
from .figure2 import DEFAULT_EXHAUSTIVE_N, exhaustive_census_source


def compute_figure3(
    n: int = DEFAULT_EXHAUSTIVE_N,
    total_edge_costs: Optional[Sequence[float]] = None,
    jobs: Optional[int] = None,
) -> FigureData:
    """The Figure 3 dataset from the exhaustive census on ``n`` players."""
    census = exhaustive_census_source(n, jobs=jobs)
    if total_edge_costs is None:
        total_edge_costs = log_spaced_alphas(0.4, 2.0 * n * n, 22)
    return census_figure_series(census, "average_links", total_edge_costs)


def compute_figure3_sampled(
    n: int = 10,
    total_edge_costs: Optional[Sequence[float]] = None,
    num_samples: int = 12,
    seed: int = 11,
    jobs: Optional[int] = None,
) -> FigureData:
    """The Figure 3 dataset from dynamics-sampled equilibria (paper-sized n)."""
    if total_edge_costs is None:
        total_edge_costs = log_spaced_alphas(0.5, float(n * n), 8)
    sampled = sample_equilibria_over_grid(
        n, total_edge_costs, num_samples=num_samples, seed=seed, jobs=jobs
    )
    return sampled_figure_series(n, "average_links", sampled)


def run(
    n: int = DEFAULT_EXHAUSTIVE_N,
    include_sampled: bool = False,
    sampled_n: int = 10,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Run the Figure 3 reproduction and check the paper's qualitative claims.

    ``jobs`` parallelises the census build (and the sampled sweep when
    enabled); ``seed`` overrides the default seed of the sampled variant.
    """
    result = ExperimentResult(
        experiment_id="figure3",
        title="Figure 3 — average number of links vs link cost (UCG vs BCG)",
    )
    result.notes.append(
        f"paper uses an exhaustive census on 10 agents; this exhaustive census uses "
        f"n = {n} (see DESIGN.md for the substitution rationale)"
    )
    figure = compute_figure3(n, jobs=jobs)

    gaps = [
        bcg.value - ucg.value
        for ucg, bcg in zip(figure.ucg.points, figure.bcg.points)
        if ucg.value == ucg.value and bcg.value == bcg.value
    ]
    mean_gap = sum(gaps) / len(gaps) if gaps else float("nan")
    share_more = (
        sum(1 for gap in gaps if gap > -1e-9) / len(gaps) if gaps else float("nan")
    )
    result.add_claim(
        description="BCG equilibrium networks carry more links than UCG ones on average",
        expected="mean(links_BCG - links_UCG) > 0 over the link-cost grid",
        observed=f"mean gap = {mean_gap:+.4f} edges",
        passed=mean_gap > 0,
    )
    result.add_claim(
        description="the BCG has at least as many links for most link costs",
        expected="links_BCG >= links_UCG on a majority of grid points",
        observed=f"share of grid points = {share_more:.2%}",
        passed=share_more >= 0.5,
    )
    minimum_edges = figure.bcg.points[-1].value
    result.add_claim(
        description="for very expensive links the stable networks are trees",
        expected=f"average edge count approaches n - 1 = {n - 1}",
        observed=f"average edge count at the largest cost = {minimum_edges:.4f}",
        passed=abs(minimum_edges - (n - 1)) < 0.75,
    )
    result.tables.append(format_figure(figure, "Figure 3 (exhaustive census)"))

    if include_sampled:
        sampled_kwargs = {"jobs": jobs}
        if seed is not None:
            sampled_kwargs["seed"] = seed
        sampled_figure = compute_figure3_sampled(sampled_n, **sampled_kwargs)
        result.tables.append(
            format_figure(sampled_figure, f"Figure 3 (sampled, n = {sampled_n})")
        )
    return result
