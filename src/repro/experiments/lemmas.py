"""Computational checks of Lemmas 4, 5 and 6 of the paper.

* **Lemma 4** (``α < 1``): the complete graph is the *only* efficient graph
  and the *only* pairwise-stable graph of the BCG.
* **Lemma 5** (``α > 1``): the star is the *only* efficient graph; it is
  pairwise stable but one of many stable graphs.
* **Lemma 6**: the cycle ``C_n`` is pairwise stable for a window of link
  costs ``α > 1`` given in closed form, and its price of anarchy is ``O(1)``.

Lemmas 4 and 5 are verified exhaustively over all connected topologies on a
small number of vertices; Lemma 6 is verified by comparing the paper's
closed-form window with the exact stability interval of the cycle and by
evaluating the PoA inside the window.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.census import cached_census
from ..analysis.report import format_table
from ..core.anarchy import price_of_anarchy
from ..core.bilateral import is_pairwise_stable
from ..core.efficiency import exhaustive_social_optimum
from ..core.stability_intervals import pairwise_stability_interval
from ..core.theory import cycle_stability_window
from ..graphs import cycle_graph, is_complete, is_star
from .base import ExperimentResult


def run_lemma4(
    n: int = 6,
    alphas: Sequence[float] = (0.25, 0.5, 0.9),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Lemma 4: for ``α < 1`` the complete graph is uniquely efficient and uniquely stable."""
    result = ExperimentResult(
        experiment_id="lemma4",
        title=f"Lemma 4 — α < 1: the complete graph is uniquely efficient and stable (n = {n})",
    )
    census = cached_census(n, include_ucg=False, jobs=jobs)
    graphs = [record.graph for record in census.records]
    rows = []
    for alpha in alphas:
        _, optima = exhaustive_social_optimum(graphs, alpha, "bcg")
        stable = census.stable_graphs_bcg(alpha)
        optima_complete = len(optima) == 1 and is_complete(optima[0])
        stable_complete = len(stable) == 1 and is_complete(stable[0])
        result.add_claim(
            description=f"α = {alpha}: unique efficient graph is K_{n}",
            expected="exactly the complete graph",
            observed=f"{len(optima)} optimal graph(s), complete: {optima_complete}",
            passed=optima_complete,
        )
        result.add_claim(
            description=f"α = {alpha}: unique pairwise stable graph is K_{n}",
            expected="exactly the complete graph",
            observed=f"{len(stable)} stable graph(s), complete: {stable_complete}",
            passed=stable_complete,
        )
        rows.append([alpha, len(optima), len(stable)])
    result.tables.append(
        format_table(["alpha", "#efficient graphs", "#stable graphs"], rows)
    )
    return result


def run_lemma5(
    n: int = 6,
    alphas: Sequence[float] = (1.5, 2.0, 4.0),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Lemma 5: for ``α > 1`` the star is uniquely efficient, stable but not unique."""
    result = ExperimentResult(
        experiment_id="lemma5",
        title=f"Lemma 5 — α > 1: the star is uniquely efficient and stable but not unique (n = {n})",
    )
    census = cached_census(n, include_ucg=False, jobs=jobs)
    graphs = [record.graph for record in census.records]
    rows = []
    for alpha in alphas:
        _, optima = exhaustive_social_optimum(graphs, alpha, "bcg")
        stable = census.stable_graphs_bcg(alpha)
        optima_star = len(optima) == 1 and is_star(optima[0])
        star_is_stable = any(is_star(g) for g in stable)
        not_unique = len(stable) > 1
        result.add_claim(
            description=f"α = {alpha}: unique efficient graph is the star",
            expected="exactly the star",
            observed=f"{len(optima)} optimal graph(s), star: {optima_star}",
            passed=optima_star,
        )
        result.add_claim(
            description=f"α = {alpha}: the star is pairwise stable",
            expected="star in the stable set",
            observed=f"star stable: {star_is_stable}",
            passed=star_is_stable,
        )
        result.add_claim(
            description=f"α = {alpha}: the star is not the only stable graph",
            expected="more than one stable topology",
            observed=f"{len(stable)} stable topologies",
            passed=not_unique,
        )
        rows.append([alpha, len(optima), len(stable)])
    result.tables.append(
        format_table(["alpha", "#efficient graphs", "#stable graphs"], rows)
    )
    return result


def run_lemma6(sizes: Sequence[int] = (5, 6, 7, 8, 10, 12, 16, 20, 24)) -> ExperimentResult:
    """Lemma 6: cycles are pairwise stable inside the paper's closed-form window, with O(1) PoA."""
    result = ExperimentResult(
        experiment_id="lemma6",
        title="Lemma 6 — the cycle C_n is pairwise stable for some α > 1 and has O(1) PoA",
    )
    rows = []
    poa_values = []
    odd_deviation_noted = False
    for n in sizes:
        cycle = cycle_graph(n)
        window_lo, window_hi = cycle_stability_window(n)
        exact_lo, exact_hi = pairwise_stability_interval(cycle)
        # Evaluate stability at the midpoint of the *exact* window; the
        # paper's closed form is compared against it in the table.
        midpoint = (exact_lo + exact_hi) / 2.0
        stable_at_midpoint = midpoint > 0 and is_pairwise_stable(cycle, midpoint)
        windows_overlap = max(window_lo, exact_lo) < min(window_hi, exact_hi) + 1e-9
        window_matches = (
            abs(window_lo - exact_lo) < 1e-9 and abs(window_hi - exact_hi) < 1e-9
        )
        poa = price_of_anarchy(cycle, midpoint, "bcg") if midpoint > 0 else float("nan")
        poa_values.append(poa)
        if n >= 5:
            result.add_claim(
                description=f"C_{n} is pairwise stable for some link cost α > 1",
                expected="non-empty stability window above α = 1, stable at its midpoint",
                observed=(
                    f"exact window ({exact_lo:.4g}, {exact_hi:.4g}], stable at "
                    f"α = {midpoint:.4g}: {stable_at_midpoint}"
                ),
                passed=stable_at_midpoint and midpoint > 1,
            )
            result.add_claim(
                description=f"Lemma 6 closed-form window for C_{n} overlaps the exact stability interval",
                expected=f"({window_lo:.4g}, {window_hi:.4g}) ∩ ({exact_lo:.4g}, {exact_hi:.4g}] ≠ ∅",
                observed=f"overlap: {windows_overlap}",
                passed=windows_overlap,
            )
        if n % 2 == 1 and not window_matches and not odd_deviation_noted:
            odd_deviation_noted = True
            result.notes.append(
                "for odd n the paper's closed-form window (n-3)(n+1)/8 < α < (n+1)(n-1)/4 "
                "differs from the exact interval ((n-1)²/4 is the exact upper endpoint); "
                "the windows overlap but do not coincide — see EXPERIMENTS.md"
            )
        rows.append(
            [
                n,
                f"({window_lo:.4g}, {window_hi:.4g})",
                f"({exact_lo:.4g}, {exact_hi:.4g}]",
                midpoint,
                poa,
            ]
        )
    # Lemma 6 also asserts the window scales like α = Θ(n²): check the exact
    # lower endpoint divided by n² stays within constant factors.
    scale_ratios = []
    for n, row in zip(sizes, rows):
        exact_lo = pairwise_stability_interval(cycle_graph(n))[0]
        scale_ratios.append(exact_lo / (n * n))
    spread = max(scale_ratios) / min(scale_ratios) if min(scale_ratios) > 0 else float("inf")
    result.add_claim(
        description="the stabilising link cost of C_n scales as Θ(n²)",
        expected="α_min / n² within a constant factor across n",
        observed=f"α_min/n² ∈ [{min(scale_ratios):.3f}, {max(scale_ratios):.3f}]",
        passed=spread < 8.0,
    )
    bounded = max(v for v in poa_values if v == v) <= 2.0
    result.add_claim(
        description="the cycle's price of anarchy stays bounded as n grows (O(1))",
        expected="ρ(C_n) below a small constant for all tested n",
        observed=f"max ρ = {max(poa_values):.4f}",
        passed=bounded,
    )
    result.tables.append(
        format_table(
            ["n", "Lemma 6 window", "exact interval", "α (midpoint)", "ρ(C_n)"],
            rows,
        )
    )
    return result


def run(n: int = 6) -> ExperimentResult:
    """Run all three lemma experiments and merge them into a single report."""
    merged = ExperimentResult(
        experiment_id="lemmas",
        title="Lemmas 4, 5, 6 — efficiency and stability of canonical topologies",
    )
    for sub in (run_lemma4(n), run_lemma5(n), run_lemma6()):
        merged.claims.extend(sub.claims)
        merged.tables.extend(sub.tables)
        merged.notes.extend(sub.notes)
    return merged
