"""Extension experiment: improvement dynamics and stochastic stability.

Section 6 of the paper names dynamic, on-going network formation as future
work and cites the stochastic-stability literature.  This experiment builds
the full improvement graph over every labelled network on a small player set,
checks that its fixed points are exactly the pairwise-stable networks of
Definition 3, and runs the ε-perturbed myopic dynamics to see which stable
networks a noisy decentralised process actually selects.

The headline findings (asserted as claims):

* the sinks of the myopic single-link dynamics coincide exactly with the
  pairwise-stable networks;
* the perturbed process spends most of its time at those sinks;
* for cheap links (α < 1) it selects the efficient complete graph;
* for expensive links (α > 1) the modal outcome is the **empty** network —
  the mutual-blocking coordination failure that motivates the paper's use of
  pairwise (rather than Nash) stability becomes starkly visible once the
  process has to *build* the network from nothing.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.improvement import (
    build_improvement_graph,
    mask_to_graph,
    stochastic_stability_analysis,
)
from ..analysis.report import format_table
from ..core.bilateral import is_pairwise_stable
from ..graphs import canonical_form, complete_graph, empty_graph, is_complete, is_empty
from .base import ExperimentResult


def run(
    n: int = 5,
    alphas: Sequence[float] = (0.6, 2.0, 6.0),
    epsilon: float = 0.02,
) -> ExperimentResult:
    """Run the improvement-dynamics extension experiment."""
    result = ExperimentResult(
        experiment_id="ext_dynamics",
        title=(
            f"Extension — improvement dynamics and stochastic stability "
            f"(n = {n}, ε = {epsilon})"
        ),
    )
    result.notes.append(
        "dynamic network formation is listed as future work in Section 6; this "
        "experiment analyses the myopic single-link dynamics over all labelled "
        f"networks on {n} players and its ε-perturbed Markov chain"
    )

    rows = []
    for alpha in alphas:
        improvement = build_improvement_graph(n, alpha)
        mismatches = 0
        for state, successors in improvement.successors.items():
            graph = mask_to_graph(n, state, improvement.pairs)
            if (not successors) != is_pairwise_stable(graph, alpha):
                mismatches += 1
        result.add_claim(
            description=(
                f"α = {alpha}: fixed points of the myopic dynamics are exactly the "
                "pairwise-stable networks"
            ),
            expected="0 mismatches over all labelled networks",
            observed=f"{mismatches} mismatches over {improvement.num_states} networks",
            passed=mismatches == 0,
        )

        analysis = stochastic_stability_analysis(n, alpha, epsilon)
        result.add_claim(
            description=f"α = {alpha}: the perturbed dynamics concentrates on stable networks",
            expected="more than 2/3 of the stationary mass on the sinks",
            observed=f"mass on sinks = {analysis.mass_on_sinks:.3f}",
            passed=analysis.mass_on_sinks > 2.0 / 3.0,
        )
        modal = analysis.modal_graph
        if alpha < 1:
            result.add_claim(
                description=f"α = {alpha}: the stochastically selected network is the efficient complete graph",
                expected="modal network = K_n",
                observed=f"modal network has {modal.num_edges} edges",
                passed=is_complete(modal),
            )
        else:
            result.add_claim(
                description=(
                    f"α = {alpha}: mutual blocking makes the empty network the modal outcome "
                    "of noisy decentralised formation"
                ),
                expected="modal network = empty network",
                observed=f"modal network has {modal.num_edges} edges",
                passed=is_empty(modal),
            )
        complete_mass = analysis.mass_by_canonical_class.get(
            canonical_form(complete_graph(n)), 0.0
        )
        empty_mass = analysis.mass_by_canonical_class.get(
            canonical_form(empty_graph(n)), 0.0
        )
        rows.append(
            [
                alpha,
                len(improvement.sinks()),
                f"{analysis.mass_on_sinks:.3f}",
                f"{analysis.modal_class_mass():.3f}",
                modal.num_edges,
                f"{complete_mass:.3f}",
                f"{empty_mass:.3f}",
            ]
        )

    result.tables.append(
        format_table(
            [
                "alpha",
                "#sinks (labelled)",
                "mass on sinks",
                "modal class mass",
                "modal #edges",
                "mass on K_n",
                "mass on empty",
            ],
            rows,
        )
    )
    return result
