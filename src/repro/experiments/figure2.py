"""Figure 2: average price of anarchy of equilibrium networks, UCG vs BCG.

The paper computes, for ten agents, every pairwise-stable network of the BCG
and every Nash network of the UCG by enumerating all connected topologies,
and plots the *average* price of anarchy of the two equilibrium sets against
the (log of the) link cost.  The qualitative findings are:

1. the average PoA of the BCG is *lower* than the UCG's when links are cheap;
2. the order reverses as links become expensive;
3. the average PoA rises for intermediate link costs because many suboptimal
   topologies join the stable set.

As documented in DESIGN.md we reproduce the exhaustive census at a smaller
player count (default 6, optionally 7) and add a dynamics-sampled census for
the paper's n = 10.  The claims above are about the *shape* of the curves and
are checked on the reproduced series.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.census import cached_census
from ..analysis.figure_series import FigureData, census_figure_series, sampled_figure_series
from ..analysis.report import format_figure
from ..analysis.sampling import sample_equilibria_over_grid
from ..analysis.store import cached_store, store_available
from ..analysis.sweeps import log_spaced_alphas
from .base import ExperimentResult

#: Default number of players of the exhaustive census (paper: 10; see DESIGN.md).
DEFAULT_EXHAUSTIVE_N = 6


def exhaustive_census_source(n: int, jobs: Optional[int] = None):
    """The exhaustive equilibrium source for the figure experiments.

    The columnar :class:`~repro.analysis.store.CensusStore` when NumPy is
    available (whole α-grids answered vectorised), otherwise the per-record
    :class:`~repro.analysis.census.EquilibriumCensus` — the two are
    asserted element-for-element identical by the test suite, so the figure
    output does not depend on the backend.
    """
    if store_available():
        return cached_store(n, jobs=jobs)
    return cached_census(n, jobs=jobs)


def compute_figure2(
    n: int = DEFAULT_EXHAUSTIVE_N,
    total_edge_costs: Optional[Sequence[float]] = None,
    jobs: Optional[int] = None,
) -> FigureData:
    """The Figure 2 dataset from the exhaustive census on ``n`` players."""
    census = exhaustive_census_source(n, jobs=jobs)
    if total_edge_costs is None:
        total_edge_costs = log_spaced_alphas(0.4, 2.0 * n * n, 22)
    return census_figure_series(census, "average_poa", total_edge_costs)


def compute_figure2_sampled(
    n: int = 10,
    total_edge_costs: Optional[Sequence[float]] = None,
    num_samples: int = 12,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureData:
    """The Figure 2 dataset from dynamics-sampled equilibria (paper-sized n)."""
    if total_edge_costs is None:
        total_edge_costs = log_spaced_alphas(0.5, float(n * n), 8)
    sampled = sample_equilibria_over_grid(
        n, total_edge_costs, num_samples=num_samples, seed=seed, jobs=jobs
    )
    return sampled_figure_series(n, "average_poa", sampled)


def _low_high_cost_comparison(figure: FigureData) -> tuple:
    """Average PoA gap (BCG - UCG) at the cheap and the expensive end of the grid."""
    def finite_pairs():
        for u, b in zip(figure.ucg.points, figure.bcg.points):
            if u.value == u.value and b.value == b.value:
                yield u, b

    pairs = list(finite_pairs())
    if not pairs:
        return float("nan"), float("nan")
    low_count = max(1, len(pairs) // 4)
    cheap = pairs[:low_count]
    expensive = pairs[-low_count:]
    cheap_gap = sum(b.value - u.value for u, b in cheap) / len(cheap)
    expensive_gap = sum(b.value - u.value for u, b in expensive) / len(expensive)
    return cheap_gap, expensive_gap


def run(
    n: int = DEFAULT_EXHAUSTIVE_N,
    include_sampled: bool = False,
    sampled_n: int = 10,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Run the Figure 2 reproduction and check the paper's qualitative claims.

    ``jobs`` parallelises the census build (and the sampled sweep when
    enabled); ``seed`` overrides the default seed of the sampled variant.
    """
    result = ExperimentResult(
        experiment_id="figure2",
        title="Figure 2 — average price of anarchy vs link cost (UCG vs BCG)",
    )
    result.notes.append(
        f"paper uses an exhaustive census on 10 agents; this exhaustive census uses "
        f"n = {n} (see DESIGN.md for the substitution rationale)"
    )
    figure = compute_figure2(n, jobs=jobs)
    cheap_gap, expensive_gap = _low_high_cost_comparison(figure)
    result.add_claim(
        description="BCG average PoA is no worse than UCG for cheap links",
        expected="average PoA(BCG) - average PoA(UCG) <= 0 at the low-cost end",
        observed=f"gap = {cheap_gap:+.4f}",
        passed=cheap_gap <= 1e-9,
    )
    result.add_claim(
        description="BCG average PoA is worse than UCG for expensive links",
        expected="average PoA(BCG) - average PoA(UCG) > 0 at the high-cost end",
        observed=f"gap = {expensive_gap:+.4f}",
        passed=expensive_gap > 0,
    )
    peak = max(v for v in figure.bcg.values() if v == v)
    ends = [figure.bcg.points[0].value, figure.bcg.points[-1].value]
    result.add_claim(
        description="average PoA peaks at intermediate link costs (BCG)",
        expected="interior maximum above both endpoints",
        observed=f"peak {peak:.4f} vs endpoints {ends[0]:.4f}, {ends[1]:.4f}",
        passed=peak > max(e for e in ends if e == e) - 1e-12,
    )
    result.tables.append(format_figure(figure, "Figure 2 (exhaustive census)"))

    if include_sampled:
        sampled_kwargs = {"jobs": jobs}
        if seed is not None:
            sampled_kwargs["seed"] = seed
        sampled_figure = compute_figure2_sampled(sampled_n, **sampled_kwargs)
        result.tables.append(
            format_figure(sampled_figure, f"Figure 2 (sampled, n = {sampled_n})")
        )
    return result
