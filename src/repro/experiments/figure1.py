"""Figure 1: pairwise-stable graphs of the bilateral connection game.

The paper's Figure 1 exhibits six graphs and states that each is pairwise
stable (for some link cost): the Petersen graph, the McGee graph, the
octahedral graph, the Clebsch graph, the Hoffman–Singleton graph and the star
on 8 vertices.  The experiment reconstructs every graph, verifies its
advertised structural parameters (cage / strongly-regular / Moore
properties), computes its pairwise-stability link-cost window and checks
stability exactly at the window's midpoint.  Section 4.1's two
link-convexity examples (Desargues: link convex; dodecahedral: not) are
checked as well.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.store import bcg_alpha_columns, store_available
from ..core.convexity import is_link_convex
from ..core.stability_intervals import pairwise_stability_profile
from ..graphs import (
    Graph,
    desargues_graph,
    diameter,
    dodecahedral_graph,
    girth,
    hoffman_singleton_graph,
    is_star,
    mcgee_graph,
    octahedral_graph,
    clebsch_graph,
    petersen_graph,
    regular_degree,
    star_8,
    strongly_regular_parameters,
)
from ..analysis.report import format_table
from .base import ExperimentResult

#: The advertised strongly-regular parameters from the Figure 1 caption.
EXPECTED_SRG: Dict[str, Optional[tuple]] = {
    "petersen": (10, 3, 0, 1),
    "mcgee": None,  # the McGee graph is a cage but not strongly regular
    "octahedral": (6, 4, 2, 4),
    "clebsch": (16, 5, 0, 2),
    "hoffman_singleton": (50, 7, 0, 1),
    "star_8": None,
}

#: The advertised (degree, girth) cage parameters, where applicable.
EXPECTED_CAGE: Dict[str, Optional[tuple]] = {
    "petersen": (3, 5),
    "mcgee": (3, 7),
    "octahedral": None,
    "clebsch": None,
    "hoffman_singleton": (7, 5),
    "star_8": None,
}

_BUILDERS = {
    "petersen": petersen_graph,
    "mcgee": mcgee_graph,
    "octahedral": octahedral_graph,
    "clebsch": clebsch_graph,
    "hoffman_singleton": hoffman_singleton_graph,
    "star_8": star_8,
}


def _stability_midpoint(alpha_min: float, alpha_max: float) -> Optional[float]:
    """A link cost at which the graph has the best chance of being stable.

    Uses the midpoint of the Lemma 2 window when it is non-degenerate, the
    boundary value itself when the window collapses to a single point (e.g.
    the octahedral graph, stable exactly at ``α = α_min = α_max``), and
    ``α_min + 1`` for graphs that stay stable for arbitrarily large link
    costs (trees and stars, whose ``α_max`` is infinite).
    """
    if alpha_max == float("inf"):
        return alpha_min + 1.0 if alpha_min < float("inf") else None
    if alpha_min < alpha_max:
        return (alpha_min + alpha_max) / 2.0
    if alpha_min == alpha_max and alpha_min > 0:
        return alpha_min
    return None


def _stability_windows(profiles) -> list:
    """Per-graph Lemma 2 windows, via the columnar kernels when available.

    With NumPy the profiles are flattened into the same ragged α-decision
    columns the :class:`~repro.analysis.store.CensusStore` uses and the
    windows fall out of one segmented reduction
    (:func:`repro.engine.columnar.stability_windows`); the pure-Python
    fallback reads the identical values off the profile properties.
    """
    if store_available():
        from ..engine.columnar import stability_windows

        rem_min, add_lo, _, add_indptr = bcg_alpha_columns(profiles)
        alpha_mins, alpha_maxs = stability_windows(rem_min, add_lo, add_indptr)
        return list(zip(alpha_mins.tolist(), alpha_maxs.tolist()))
    return [(profile.alpha_min, profile.alpha_max) for profile in profiles]


def run(include_hoffman_singleton: bool = True) -> ExperimentResult:
    """Run the Figure 1 reproduction.

    ``include_hoffman_singleton=False`` skips the 50-vertex graph, whose
    stability analysis is the slowest part (used by the quick benchmark
    variant).
    """
    result = ExperimentResult(
        experiment_id="figure1",
        title="Figure 1 — pairwise stable graphs in the BCG",
    )
    selected = [
        (name, builder())
        for name, builder in _BUILDERS.items()
        if include_hoffman_singleton or name != "hoffman_singleton"
    ]
    # One deviation analysis per graph; the windows are answered through
    # the same columnar kernels as the census store (pure-Python fallback
    # reads the identical values off the profiles).
    profiles = [pairwise_stability_profile(graph) for _, graph in selected]
    windows = _stability_windows(profiles)

    rows = []
    for (name, graph), profile, (alpha_min, alpha_max) in zip(
        selected, profiles, windows
    ):
        midpoint = _stability_midpoint(alpha_min, alpha_max)
        stable = midpoint is not None and profile.is_stable_at(midpoint)
        result.add_claim(
            description=f"{name} is pairwise stable for some link cost",
            expected="stable window with α_min < α_max",
            observed=f"α ∈ ({alpha_min:.4g}, {alpha_max:.4g}], stable at midpoint: {stable}",
            passed=stable,
        )

        srg = strongly_regular_parameters(graph)
        expected_srg = EXPECTED_SRG[name]
        if expected_srg is not None:
            result.add_claim(
                description=f"{name} strongly regular parameters",
                expected=f"srg{expected_srg}",
                observed=f"srg{srg.as_tuple()}" if srg else "not strongly regular",
                passed=srg is not None and srg.as_tuple() == expected_srg,
            )
        expected_cage = EXPECTED_CAGE[name]
        if expected_cage is not None:
            degree, cage_girth = expected_cage
            result.add_claim(
                description=f"{name} is a ({degree},{cage_girth})-cage candidate",
                expected=f"{degree}-regular with girth {cage_girth}",
                observed=f"{regular_degree(graph)}-regular with girth {girth(graph):g}",
                passed=regular_degree(graph) == degree and girth(graph) == cage_girth,
            )
        if name == "star_8":
            result.add_claim(
                description="panel 6 is the star on 8 vertices",
                expected="star graph",
                observed="star graph" if is_star(graph) else "not a star",
                passed=is_star(graph),
            )
        rows.append(
            [
                name,
                graph.n,
                graph.num_edges,
                f"{girth(graph):g}",
                f"{diameter(graph):g}",
                f"({alpha_min:.4g}, {alpha_max:.4g}]",
                "yes" if stable else "no",
            ]
        )

    # Section 4.1 side remark: the paper states that the Desargues graph is
    # link convex while the dodecahedral graph is not.  The dodecahedral half
    # reproduces; the Desargues half does *not* under exact computation (its
    # best addition saving of 10 exceeds its smallest removal increase of 8),
    # which we record as a note rather than a claim — see EXPERIMENTS.md.
    desargues_convex = is_link_convex(desargues_graph())
    dodecahedral_convex = is_link_convex(dodecahedral_graph())
    result.add_claim(
        description="dodecahedral graph is not link convex (Section 4.1)",
        expected="not link convex",
        observed="link convex" if dodecahedral_convex else "not link convex",
        passed=not dodecahedral_convex,
    )
    result.notes.append(
        "Section 4.1 also states the Desargues graph is link convex; exact "
        f"computation finds it is {'link convex' if desargues_convex else 'NOT link convex'} "
        "(max addition saving exceeds min removal increase) — a documented "
        "deviation from the paper's side remark."
    )

    result.tables.append(
        format_table(
            ["graph", "n", "m", "girth", "diameter", "stable α window", "stable"],
            rows,
        )
    )
    return result
