"""Common result types for the reproduction experiments.

Every experiment (one per figure, lemma or proposition of the paper) returns
an :class:`ExperimentResult`: a list of checkable claims (paper statement vs
measured outcome) plus pre-rendered text tables.  The benchmarks call the
same entry points, so "the code that regenerates the figure" and "the code
the test suite asserts on" are one and the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ClaimCheck:
    """One paper claim together with what the reproduction measured."""

    description: str
    expected: str
    observed: str
    passed: bool

    def render(self) -> str:
        """One-line summary of the check."""
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.description}: expected {self.expected}; observed {self.observed}"


@dataclass
class ExperimentResult:
    """The outcome of running one experiment."""

    experiment_id: str
    title: str
    claims: List[ClaimCheck] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every claim check passed."""
        return all(claim.passed for claim in self.claims)

    def add_claim(
        self, description: str, expected: str, observed: str, passed: bool
    ) -> None:
        """Record one claim check."""
        self.claims.append(
            ClaimCheck(
                description=description,
                expected=expected,
                observed=observed,
                passed=passed,
            )
        )

    def render(self) -> str:
        """Full text report of the experiment."""
        lines = [self.title, "=" * len(self.title), ""]
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.notes:
            lines.append("")
        for claim in self.claims:
            lines.append(claim.render())
        for table in self.tables:
            lines.append("")
            lines.append(table)
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line pass/fail summary."""
        passed = sum(1 for c in self.claims if c.passed)
        return (
            f"{self.experiment_id}: {passed}/{len(self.claims)} claims reproduced"
        )
