"""Quickstart: the bilateral connection game in a dozen lines.

Builds the star and the cycle on eight players, checks which are pairwise
stable at a few link costs, and prints their price of anarchy — the basic
workflow of the library.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BilateralConnectionGame,
    UnilateralConnectionGame,
    cycle_graph,
    star_graph,
)
from repro.core import pairwise_stability_interval


def main() -> None:
    n = 8
    star = star_graph(n)
    cycle = cycle_graph(n)

    print(f"Connection games on n = {n} players")
    print("=" * 40)
    for alpha in (0.5, 2.0, 6.0, 20.0):
        bcg = BilateralConnectionGame(n=n, alpha=alpha)
        ucg = UnilateralConnectionGame(n=n, alpha=alpha)
        print(f"\nlink cost α = {alpha}")
        for name, graph in (("star", star), ("cycle", cycle)):
            stable = bcg.is_pairwise_stable(graph)
            nash = ucg.is_nash_network(graph)
            rho = bcg.price_of_anarchy(graph)
            print(
                f"  {name:>5}: pairwise stable (BCG) = {str(stable):5}  "
                f"Nash network (UCG) = {str(nash):5}  ρ_BCG = {rho:.3f}"
            )

    print("\nStability windows (link costs at which each graph is stable):")
    for name, graph in (("star", star), ("cycle", cycle)):
        lo, hi = pairwise_stability_interval(graph)
        print(f"  {name:>5}: α ∈ ({lo:g}, {hi:g}]")

    print("\nThe efficient network switches from the complete graph to the star at α = 1:")
    for alpha in (0.5, 1.5):
        bcg = BilateralConnectionGame(n=n, alpha=alpha)
        optimum = bcg.efficient_graph()
        print(
            f"  α = {alpha}: efficient graph has {optimum.num_edges} edges "
            f"(social cost {bcg.efficient_social_cost():.0f})"
        )


if __name__ == "__main__":
    main()
