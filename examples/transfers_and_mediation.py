"""Can side payments fix the inefficiency of consent-based network formation?

Section 6 of the paper asks whether bilateral transfers between players can
mediate the price of anarchy of the bilateral connection game.  This example
answers the question computationally on an exhaustive census: it compares the
set of pairwise-stable networks with and without transfers, their average and
worst-case price of anarchy, and the proper-equilibrium certificates of the
efficient network.

The punchline (visible in the table): purely *local* transfers barely change
anything — the inefficiency of the stable networks comes from externalities
on third parties, which two endpoints bargaining over a single link cannot
internalise.

Run with::

    python examples/transfers_and_mediation.py [n]
"""

import sys

from repro.analysis import cached_census, format_table
from repro.core import (
    average_price_of_anarchy,
    efficient_graph,
    is_certified_proper_equilibrium,
    is_pairwise_stable_with_transfers,
    transfer_stable_graphs,
    worst_case_price_of_anarchy,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    census = cached_census(n, include_ucg=False)
    graphs = [record.graph for record in census.records]

    rows = []
    for alpha in (1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0):
        plain = census.stable_graphs_bcg(alpha)
        with_transfers = transfer_stable_graphs(graphs, alpha)
        optimum = efficient_graph(n, alpha, "bcg")
        rows.append(
            [
                alpha,
                len(plain),
                len(with_transfers),
                f"{average_price_of_anarchy(plain, alpha, 'bcg'):.4f}",
                f"{average_price_of_anarchy(with_transfers, alpha, 'bcg'):.4f}",
                f"{worst_case_price_of_anarchy(plain, alpha, 'bcg'):.4f}",
                f"{worst_case_price_of_anarchy(with_transfers, alpha, 'bcg'):.4f}",
                "yes" if is_pairwise_stable_with_transfers(optimum, alpha) else "no",
                "yes" if is_certified_proper_equilibrium(optimum, alpha) else "no",
            ]
        )

    print(f"Pairwise stability with and without transfers (all connected topologies, n = {n})")
    print(
        format_table(
            [
                "alpha",
                "#stable",
                "#stable+transfers",
                "avg PoA",
                "avg PoA+transfers",
                "worst PoA",
                "worst PoA+transfers",
                "optimum transfer-stable",
                "optimum proper-certified",
            ],
            rows,
        )
    )
    print(
        "\nTransfers keep the efficient network stable and never worsen the worst\n"
        "case, but they barely move the averages: local side payments cannot\n"
        "internalise the benefit a new link brings to *other* players, which is\n"
        "the root cause of the price of anarchy in the consent-based game."
    )


if __name__ == "__main__":
    main()
