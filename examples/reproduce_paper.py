"""Run every experiment of the reproduction and print a pass/fail report.

This is the one-command reproduction of all figures, lemmas and propositions
of Corbo & Parkes (PODC 2005), equivalent to ``python -m repro.cli --all``
but with a compact summary at the end.

Run with::

    python examples/reproduce_paper.py [--full]

``--full`` also prints every table (several screens of output).
"""

import sys
import time

from repro.experiments import available_experiments, run_experiment


def main() -> None:
    full = "--full" in sys.argv
    summaries = []
    for experiment_id in available_experiments():
        start = time.time()
        result = run_experiment(experiment_id)
        elapsed = time.time() - start
        summaries.append((result, elapsed))
        if full:
            print(result.render())
            print()
        else:
            print(f"{result.summary()}  [{elapsed:.1f}s]")
            for claim in result.claims:
                if not claim.passed:
                    print(f"    {claim.render()}")

    print()
    print("Reproduction summary")
    print("--------------------")
    total_claims = sum(len(r.claims) for r, _ in summaries)
    passed_claims = sum(sum(1 for c in r.claims if c.passed) for r, _ in summaries)
    total_time = sum(elapsed for _, elapsed in summaries)
    print(f"{passed_claims}/{total_claims} paper claims reproduced "
          f"across {len(summaries)} experiments in {total_time:.1f}s")


if __name__ == "__main__":
    main()
