"""Decentralised peering with and without consent: a ten-agent simulation.

The paper's motivation is distributed network design — think of autonomous
systems negotiating peering links.  An intermediary can enforce either
unilateral link creation (UCG) or bilateral consent with shared costs (BCG).
This example runs the decentralised dynamics of both games for ten agents
from random starting networks (the size of the paper's empirical study),
reports the equilibria they reach and compares efficiency, echoing the
Figure 2/3 findings: with cheap links the consent-based game reaches
efficient, dense networks; with expensive links it gets stuck in
over-connected, less efficient ones.

Run with::

    python examples/peering_dynamics.py [num_samples]
"""

import random
import sys

from repro.analysis import deduplicate_up_to_isomorphism, format_table
from repro.core import (
    best_response_dynamics_ucg,
    is_nash_graph_ucg,
    is_pairwise_stable,
    pairwise_dynamics_bcg,
    price_of_anarchy,
)
from repro.graphs import random_graph


def run_bcg(n: int, alpha: float, samples: int, seed: int):
    graphs = []
    for k in range(samples):
        rng = random.Random(seed + k)
        start = random_graph(n, 0.3, rng)
        outcome = pairwise_dynamics_bcg(n, alpha, initial=start, rng=rng)
        if outcome.converged:
            graphs.append(outcome.graph)
    return deduplicate_up_to_isomorphism(graphs)


def run_ucg(n: int, alpha: float, samples: int, seed: int):
    graphs = []
    for k in range(samples):
        rng = random.Random(seed + k)
        outcome = best_response_dynamics_ucg(n, alpha, rng=rng)
        if outcome.converged:
            graphs.append(outcome.graph)
    return deduplicate_up_to_isomorphism(graphs)


def main() -> None:
    n = 10
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rows = []
    for total_edge_cost in (1.0, 4.0, 16.0, 60.0):
        alpha_ucg = total_edge_cost          # one side pays the whole edge
        alpha_bcg = total_edge_cost / 2.0    # both sides pay half
        bcg_eq = run_bcg(n, alpha_bcg, samples, seed=int(total_edge_cost * 17))
        ucg_eq = run_ucg(n, alpha_ucg, samples, seed=int(total_edge_cost * 31))
        for game, alpha, graphs in (("UCG", alpha_ucg, ucg_eq), ("BCG", alpha_bcg, bcg_eq)):
            if not graphs:
                rows.append([total_edge_cost, game, alpha, 0, "-", "-", "-"])
                continue
            poas = [price_of_anarchy(g, alpha, game.lower()) for g in graphs]
            links = [g.num_edges for g in graphs]
            verified = all(
                is_pairwise_stable(g, alpha) if game == "BCG" else is_nash_graph_ucg(g, alpha)
                for g in graphs
                if g.num_edges <= 14  # exact UCG verification is exponential in edges
            )
            rows.append(
                [
                    total_edge_cost,
                    game,
                    alpha,
                    len(graphs),
                    f"{sum(links) / len(links):.2f}",
                    f"{sum(poas) / len(poas):.4f}",
                    "yes" if verified else "partial",
                ]
            )

    print(f"Peering dynamics with n = {n} agents, {samples} random starts per setting")
    print(
        format_table(
            [
                "edge cost",
                "game",
                "alpha",
                "#distinct equilibria",
                "avg links",
                "avg PoA",
                "exactly verified",
            ],
            rows,
        )
    )
    print(
        "\nWith cheap links both protocols reach near-efficient networks; as links\n"
        "get expensive the consent-based (BCG) networks keep more edges and a\n"
        "higher average price of anarchy than the unilateral (UCG) ones."
    )


if __name__ == "__main__":
    main()
