"""Reproduce the paper's empirical study (Figures 2 and 3) on a small census.

Enumerates every connected topology on ``n`` vertices up to isomorphism,
computes each one's BCG stability window and UCG Nash α-set once, and prints
the average price of anarchy (Figure 2) and the average number of links
(Figure 3) of the two games' equilibrium sets across a log-spaced grid of
link costs, using the paper's aligned per-edge-cost axis.

Run with::

    python examples/equilibrium_census.py [n]

``n`` defaults to 6; 7 is feasible but takes a few minutes.
"""

import sys

from repro.analysis import (
    cached_census,
    cached_store,
    census_figure_series,
    format_ascii_series,
    format_figure,
    store_available,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"Building the equilibrium census for n = {n} ...")
    # The columnar store answers the whole α-grid vectorised; the record
    # census is the dependency-free fallback with identical output.
    census = cached_store(n) if store_available() else cached_census(n)
    print(f"{len(census)} connected topologies analysed\n")

    figure2 = census_figure_series(census, "average_poa")
    print(format_figure(figure2, "Figure 2 — average price of anarchy"))
    print()
    print(format_ascii_series(figure2.ucg.values(), label="UCG avg PoA "))
    print(format_ascii_series(figure2.bcg.values(), label="BCG avg PoA "))
    print()

    figure3 = census_figure_series(census, "average_links")
    print(format_figure(figure3, "Figure 3 — average number of links"))
    print()
    print(format_ascii_series(figure3.ucg.values(), label="UCG avg links "))
    print(format_ascii_series(figure3.bcg.values(), label="BCG avg links "))

    crossover = figure2.crossover_cost()
    if crossover is not None:
        print(
            f"\nThe BCG's average PoA becomes worse than the UCG's near a total "
            f"per-edge cost of {crossover:.3g} — the qualitative reversal the paper reports."
        )


if __name__ == "__main__":
    main()
