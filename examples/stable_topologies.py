"""Explore the rich set of pairwise-stable topologies of the BCG (Figure 1).

The paper's Figure 1 shows that graphs prized in network design — cages,
Moore graphs, strongly regular graphs — are pairwise stable in the bilateral
connection game even though most of them are not Nash-supportable in the
unilateral game.  This example rebuilds each graph, reports its structural
parameters, its stability window and whether the *unilateral* game would also
support it at the same link cost.

Run with::

    python examples/stable_topologies.py
"""

from repro.analysis import format_table
from repro.core import (
    is_pairwise_stable,
    pairwise_stability_interval,
)
from repro.core.convexity import is_link_convex
from repro.core.unilateral import ucg_nash_alpha_set
from repro.graphs import (
    FIGURE1_GRAPHS,
    diameter,
    girth,
    heawood_graph,
    regular_degree,
    strongly_regular_parameters,
)


def main() -> None:
    rows = []
    builders = dict(FIGURE1_GRAPHS)
    builders["heawood"] = heawood_graph  # an extra (3,6)-cage for comparison

    for name, builder in builders.items():
        graph = builder()
        lo, hi = pairwise_stability_interval(graph)
        if hi == float("inf"):
            alpha = lo + 1.0
        elif lo < hi:
            alpha = (lo + hi) / 2.0
        else:
            alpha = lo
        stable = alpha > 0 and is_pairwise_stable(graph, alpha)
        srg = strongly_regular_parameters(graph)
        # The UCG orientation search is exponential in the number of edges, so
        # only run it for the smaller graphs.
        if graph.num_edges <= 16:
            ucg_supported = ucg_nash_alpha_set(graph).contains(alpha)
            ucg_text = "yes" if ucg_supported else "no"
        else:
            ucg_text = "(skipped)"
        rows.append(
            [
                name,
                graph.n,
                graph.num_edges,
                regular_degree(graph) if regular_degree(graph) is not None else "-",
                f"{girth(graph):g}",
                f"{diameter(graph):g}",
                str(srg) if srg else "-",
                "yes" if is_link_convex(graph) else "no",
                f"({lo:.3g}, {hi:.3g}]",
                "yes" if stable else "no",
                ucg_text,
            ]
        )

    print("Pairwise-stable topologies of the bilateral connection game (Figure 1)")
    print(
        format_table(
            [
                "graph",
                "n",
                "m",
                "deg",
                "girth",
                "diam",
                "SRG",
                "link convex",
                "stable α window",
                "stable",
                "UCG Nash at same α",
            ],
            rows,
        )
    )
    print(
        "\nCages and Moore graphs are pairwise stable in the BCG; most are not\n"
        "Nash-supportable in the UCG at the same link cost, which is the paper's\n"
        "point about the bilateral game admitting a richer set of equilibrium\n"
        "geometries."
    )


if __name__ == "__main__":
    main()
